#include "bb/staging.hpp"

#include "bb/drain.hpp"
#include "mpi/trace.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace parcoll::bb {

StagingStore::StagingStore(mpi::World& world, int fs_id, BbConfig config)
    : world_(world), fs_id_(fs_id), config_(config) {
  arenas_.resize(
      static_cast<std::size_t>(world.model().topology.num_nodes()));
  sched_ = std::make_unique<DrainScheduler>(*this);
  if (auto* sampler = world.sampler()) {
    // Per-node occupancy (queued + in-flight bytes) and drain backlog
    // (bytes still queued behind the drain fiber). The store may outlive
    // this run's sampling window; the destructor detaches.
    for (std::size_t n = 0; n < arenas_.size(); ++n) {
      probe_ids_.push_back(sampler->add_probe(
          obs::MetricsRegistry::indexed("bb.node.used_bytes", n),
          [this, n] { return static_cast<double>(arenas_[n].used); }));
      probe_ids_.push_back(sampler->add_probe(
          obs::MetricsRegistry::indexed("bb.node.backlog_bytes", n),
          [this, n] {
            std::uint64_t queued = 0;
            for (const StagedSegment& seg : arenas_[n].queue) {
              queued += seg.bytes;
            }
            return static_cast<double>(queued);
          }));
    }
  }
}

StagingStore::~StagingStore() {
  if (auto* sampler = world_.sampler()) {
    for (std::size_t id : probe_ids_) {
      sampler->remove_probe(id);
    }
  }
}

bool StagingStore::overlaps(std::span<const fs::Extent> a,
                            std::span<const fs::Extent> b) {
  // Extent lists are monotone (view mapping and staging both keep them
  // sorted), so a linear merge-walk suffices.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].end() <= b[j].offset) {
      ++i;
    } else if (b[j].end() <= a[i].offset) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

bool StagingStore::arena_overlaps(const NodeArena& arena,
                                  std::span<const fs::Extent> extents) const {
  if (!arena.in_flight.empty() && overlaps(arena.in_flight, extents)) {
    return true;
  }
  for (const StagedSegment& seg : arena.queue) {
    if (overlaps(seg.extents, extents)) {
      return true;
    }
  }
  return false;
}

bool StagingStore::any_overlap(std::span<const fs::Extent> extents) const {
  for (const NodeArena& arena : arenas_) {
    if (arena_overlaps(arena, extents)) {
      return true;
    }
  }
  return false;
}

bool StagingStore::conflicts_elsewhere(
    int node, std::span<const fs::Extent> extents) const {
  for (std::size_t n = 0; n < arenas_.size(); ++n) {
    if (static_cast<int>(n) == node) {
      continue;
    }
    if (arena_overlaps(arenas_[n], extents)) {
      return true;
    }
  }
  return false;
}

bool StagingStore::stage(mpi::Rank& self, std::span<const fs::Extent> extents,
                         const std::byte* data) {
  std::uint64_t bytes = 0;
  for (const fs::Extent& extent : extents) {
    bytes += extent.length;
  }
  if (bytes == 0) {
    return true;  // nothing to make durable
  }
  NodeArena& arena = arenas_[static_cast<std::size_t>(self.node())];
  if (arena.used + bytes > config_.capacity) {
    return false;
  }
  StagedSegment seg;
  seg.client = self.rank();
  seg.staged_at = self.now();
  seg.bytes = bytes;
  seg.extents.assign(extents.begin(), extents.end());
  if (data != nullptr) {
    seg.data.assign(data, data + bytes);
  }
  if (const fault::FaultPlan* plan = world_.fault_plan();
      plan != nullptr && plan->bb_corrupt_prob > 0.0) {
    const auto rank = static_cast<std::size_t>(self.rank());
    if (bb_draws_.size() <= rank) bb_draws_.resize(rank + 1, 0);
    if (plan->corrupt_bb(self.rank(), bb_draws_[rank]++)) {
      // The segment decays while resident: flip one bit of a seeded byte
      // of the arena copy. The durable source (the rank's buffer / the
      // checksum replica) is untouched, which is what drain-time repair
      // replays.
      seg.corrupted = true;
      ++world_.fault_state().of(self.rank()).corrupt_injected;
      if (!seg.data.empty()) {
        const std::uint64_t site = plan->corrupt_site(
            static_cast<std::uint64_t>(self.rank()), bb_draws_[rank]);
        seg.data[static_cast<std::size_t>(site % seg.data.size())] ^=
            static_cast<std::byte>(1u << ((site >> 32) & 7));
      }
    }
  }
  arena.used += bytes;
  arena.queue.push_back(std::move(seg));
  ++counters_.staged_segments;
  counters_.staged_bytes += bytes;
  if (auto* metrics = world_.metrics()) {
    ++metrics->counter("bb.staged_segments");
    metrics->counter("bb.staged_bytes") += bytes;
    metrics->gauge_max("bb.node.peak_bytes",
                       static_cast<std::size_t>(self.node()),
                       static_cast<double>(arena.used));
  }
  // The absorb itself: one memcpy into the node arena, at memory speed.
  self.touch_bytes(static_cast<double>(bytes));
  sched_->on_stage(self.node());
  return true;
}

void StagingStore::flush_until_clear(mpi::Rank& self,
                                     std::span<const fs::Extent> extents) {
  auto pending = [&] {
    return extents.empty() ? !idle() : any_overlap(extents);
  };
  if (!pending()) {
    return;
  }
  const double start = self.now();
  mpi::SpanGuard flush_span(self, obs::SpanKind::Stage, "bb_flush");
  ++flush_waiters_;
  while (pending()) {
    // A waiting flush overrides every policy gate (the drain loop checks
    // flush_waiters_), so progress only needs the fibers to be running.
    sched_->kick_all();
    sched_->poke();
    drained_.wait(world_.engine(), "bb flush");
  }
  --flush_waiters_;
  self.times().add(mpi::TimeCat::DrainWait, self.now() - start);
  if (auto* metrics = world_.metrics()) {
    metrics->quantile("bb.drain_wait_s").observe(self.now() - start);
  }
}

void StagingStore::flush_overlapping(mpi::Rank& self,
                                     std::span<const fs::Extent> extents) {
  if (extents.empty()) {
    return;
  }
  flush_until_clear(self, extents);
}

void StagingStore::flush_all(mpi::Rank& self) {
  flush_until_clear(self, {});
}

void StagingStore::foreground_end() {
  if (--foreground_ == 0) {
    sched_->poke();
  }
}

void StagingStore::note_spill(std::uint64_t bytes) {
  ++counters_.spills;
  counters_.spill_bytes += bytes;
  if (auto* metrics = world_.metrics()) {
    ++metrics->counter("bb.spills");
    metrics->counter("bb.spill_bytes") += bytes;
  }
}

void StagingStore::note_conflict_flush() {
  ++counters_.conflict_flushes;
  if (auto* metrics = world_.metrics()) {
    ++metrics->counter("bb.conflict_flushes");
  }
}

BbCounters StagingStore::harvest_counters() {
  BbCounters delta;
  delta.staged_segments =
      counters_.staged_segments - harvested_counters_.staged_segments;
  delta.staged_bytes = counters_.staged_bytes - harvested_counters_.staged_bytes;
  delta.drained_segments =
      counters_.drained_segments - harvested_counters_.drained_segments;
  delta.drained_bytes =
      counters_.drained_bytes - harvested_counters_.drained_bytes;
  delta.spills = counters_.spills - harvested_counters_.spills;
  delta.spill_bytes = counters_.spill_bytes - harvested_counters_.spill_bytes;
  delta.conflict_flushes =
      counters_.conflict_flushes - harvested_counters_.conflict_flushes;
  delta.drain_retries =
      counters_.drain_retries - harvested_counters_.drain_retries;
  delta.drain_failovers =
      counters_.drain_failovers - harvested_counters_.drain_failovers;
  harvested_counters_ = counters_;
  return delta;
}

mpi::TimeBreakdown StagingStore::harvest_drain_time() {
  mpi::TimeBreakdown delta;
  for (std::size_t i = 0; i < mpi::kNumTimeCats; ++i) {
    delta.seconds[i] = drain_time_.seconds[i] - harvested_time_.seconds[i];
  }
  harvested_time_ = drain_time_;
  return delta;
}

bool StagingStore::idle() const {
  for (const NodeArena& arena : arenas_) {
    if (!arena.queue.empty() || arena.in_flight_bytes != 0) {
      return false;
    }
  }
  return true;
}

std::uint64_t StagingStore::pending_bytes() const {
  std::uint64_t total = 0;
  for (const NodeArena& arena : arenas_) {
    total += arena.used;
  }
  return total;
}

std::shared_ptr<StagingStore> shared_store(mpi::World& world,
                                           std::uint64_t context_id, int fs_id,
                                           const BbConfig& config) {
  const std::string key = "bb:" + std::to_string(context_id) + ":" +
                          std::to_string(fs_id);
  return world.shared_object<StagingStore>(key, [&] {
    return std::make_shared<StagingStore>(world, fs_id, config);
  });
}

}  // namespace parcoll::bb
