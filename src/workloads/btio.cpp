#include "workloads/btio.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parcoll.hpp"
#include "mpi/collectives.hpp"
#include "mpiio/file.hpp"
#include "mpiio/independent.hpp"
#include "mpiio/sieve.hpp"
#include "workloads/pattern.hpp"

namespace parcoll::workloads {

namespace {

constexpr std::uint64_t kSalt = 0xB710;

int isqrt_exact(int value) {
  const int root = static_cast<int>(std::lround(std::sqrt(value)));
  if (root * root != value) {
    throw std::invalid_argument("BT-IO: process count must be a perfect square");
  }
  return root;
}

}  // namespace

dtype::Datatype BtIOConfig::filetype(int rank, int nranks) const {
  const int nc = isqrt_exact(nranks);
  const int pi = rank / nc;
  const int pj = rank % nc;
  const auto bound = [&](int c) {
    return static_cast<std::int64_t>(c) * grid / nc;
  };
  std::vector<dtype::Segment> rows;
  for (int k = 0; k < nc; ++k) {
    // Diagonal multi-partitioning: the k-th cell of processor (pi, pj)
    // shifts one position per z-slab.
    const int cx = (pj + k) % nc;
    const int cy = (pi + k) % nc;
    const int cz = k;
    const std::int64_t x0 = bound(cx);
    const std::int64_t row_len = (bound(cx + 1) - x0) *
                                 static_cast<std::int64_t>(elem_bytes);
    for (std::int64_t z = bound(cz); z < bound(cz + 1); ++z) {
      for (std::int64_t y = bound(cy); y < bound(cy + 1); ++y) {
        const std::int64_t disp =
            ((z * grid + y) * grid + x0) * static_cast<std::int64_t>(elem_bytes);
        rows.push_back(dtype::Segment{disp, static_cast<std::uint64_t>(row_len)});
      }
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const dtype::Segment& a, const dtype::Segment& b) {
              return a.disp < b.disp;
            });
  return dtype::Datatype::from_segments(
      std::move(rows), 0, static_cast<std::int64_t>(step_bytes()));
}

std::uint64_t BtIOConfig::rank_bytes(int rank, int nranks) const {
  const int nc = isqrt_exact(nranks);
  const int pi = rank / nc;
  const int pj = rank % nc;
  const auto width = [&](int c) {
    return static_cast<std::uint64_t>((c + 1) * grid / nc - c * grid / nc);
  };
  std::uint64_t total = 0;
  for (int k = 0; k < nc; ++k) {
    total += width((pj + k) % nc) * width((pi + k) % nc) * width(k);
  }
  return total * elem_bytes;
}

RunResult run_btio(const BtIOConfig& config, int nranks, const RunSpec& spec,
                   bool write) {
  mpi::World world(spec.model(nranks), spec.byte_true);
  world.set_fault(spec.fault);
  apply_observability(world, spec);
  const mpiio::Hints hints = spec.hints();
  PhaseClock clock;
  mpiio::FileStats final_stats;
  bool verified = true;

  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "btio.dat", hints);
    file.set_view(0, config.elem_bytes, config.filetype(self.rank(), nranks));
    const std::uint64_t my_bytes = config.rank_bytes(self.rank(), nranks);
    const std::uint64_t my_etypes = my_bytes / config.elem_bytes;
    const dtype::Datatype memtype = dtype::Datatype::bytes(my_bytes);

    std::vector<std::byte> buffer;
    if (spec.byte_true) {
      buffer.resize(my_bytes);
      if (!write) {
        for (int s = 0; s < config.nsteps; ++s) {
          const auto extents = file.view().map(
              static_cast<std::uint64_t>(s) * my_etypes, my_bytes);
          fill_stream(buffer.data(), extents, kSalt);
          file.write_at(static_cast<std::uint64_t>(s) * my_etypes,
                        buffer.data(), 1, memtype);
        }
        std::fill(buffer.begin(), buffer.end(), std::byte{0});
      }
    }

    mpi::barrier(self, file.comm());
    clock.begin(self.now());
    for (int s = 0; s < config.nsteps; ++s) {
      const std::uint64_t offset = static_cast<std::uint64_t>(s) * my_etypes;
      std::vector<fs::Extent> extents;
      if (spec.byte_true) {
        extents = file.view().map(offset, my_bytes);
        if (write) fill_stream(buffer.data(), extents, kSalt);
      }
      void* data = buffer.empty() ? nullptr : buffer.data();
      switch (spec.impl) {
        case Impl::PosixIndependent:
          write ? mpiio::posix_write_at(file, offset, data, 1, memtype)
                : mpiio::posix_read_at(file, offset, data, 1, memtype);
          break;
        case Impl::Sieving:
          write ? mpiio::sieve_write_at(file, offset, data, 1, memtype)
                : mpiio::sieve_read_at(file, offset, data, 1, memtype);
          break;
        case Impl::Independent:
          write ? file.write_at(offset, data, 1, memtype)
                : file.read_at(offset, data, 1, memtype);
          break;
        case Impl::Ext2ph:
        case Impl::ParColl:
          if (write) {
            core::write_at_all(file, offset, data, 1, memtype);
          } else {
            core::read_at_all(file, offset, data, 1, memtype);
          }
          break;
      }
      if (spec.byte_true && !write) {
        verified = verified && check_stream(buffer.data(), extents, kSalt);
      }
    }
    mpi::barrier(self, file.comm());
    clock.end(self.now());

    // Close before auditing and snapshotting: close drains any staged
    // burst-buffer data and folds the drain time into the file stats.
    file.close();
    if (spec.byte_true && write) {
      auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
      bool ok = store != nullptr;
      for (int s = 0; ok && s < config.nsteps; ++s) {
        const auto extents = file.view().map(
            static_cast<std::uint64_t>(s) * my_etypes, my_bytes);
        ok = verify_store(*store, file.fs_id(), extents, kSalt);
      }
      verified = verified && ok;
    }
    if (self.rank() == 0) {
      final_stats = file.stats();
    }
  });

  RunResult result =
      collect(world, clock,
              config.step_bytes() * static_cast<std::uint64_t>(config.nsteps),
              final_stats);
  result.verified = verified;
  return result;
}

RunResult run_btio_epio(const BtIOConfig& config, int nranks,
                        const RunSpec& spec) {
  mpi::World world(spec.model(nranks), spec.byte_true);
  world.set_fault(spec.fault);
  apply_observability(world, spec);
  PhaseClock clock;
  mpiio::FileStats final_stats;
  bool verified = true;

  world.run([&](mpi::Rank& self) {
    // One private file per process; a per-rank communicator keeps the
    // open/close collective semantics trivial.
    const mpi::Comm own = mpi::comm_split(self, self.comm_world(),
                                          self.rank(), 0);
    char name[64];
    std::snprintf(name, sizeof(name), "btio_ep_%05d.dat", self.rank());
    mpiio::Hints hints = spec.hints();
    hints.striping_factor = 4;  // per-process files stripe narrowly
    mpiio::FileHandle file(self, own, name, hints);
    const std::uint64_t my_bytes = config.rank_bytes(self.rank(), nranks);
    const dtype::Datatype memtype = dtype::Datatype::bytes(my_bytes);
    std::vector<std::byte> buffer;
    if (spec.byte_true) buffer.resize(my_bytes);

    mpi::barrier(self, self.comm_world());
    clock.begin(self.now());
    for (int s = 0; s < config.nsteps; ++s) {
      const fs::Extent extent{static_cast<std::uint64_t>(s) * my_bytes,
                              my_bytes};
      if (spec.byte_true) {
        fill_stream(buffer.data(), std::span(&extent, 1), kSalt);
      }
      file.write_at(extent.offset, buffer.empty() ? nullptr : buffer.data(),
                    1, memtype);
    }
    mpi::barrier(self, self.comm_world());
    clock.end(self.now());

    // Close before auditing and snapshotting: close drains any staged
    // burst-buffer data and folds the drain time into the file stats.
    file.close();
    if (spec.byte_true) {
      auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
      bool ok = store != nullptr;
      for (int s = 0; ok && s < config.nsteps; ++s) {
        const fs::Extent extent{static_cast<std::uint64_t>(s) * my_bytes,
                                my_bytes};
        ok = verify_store(*store, file.fs_id(), std::span(&extent, 1), kSalt);
      }
      verified = verified && ok;
    }
    if (self.rank() == 0) {
      final_stats = file.stats();
    }
  });

  RunResult result =
      collect(world, clock,
              config.step_bytes() * static_cast<std::uint64_t>(config.nsteps),
              final_stats);
  result.verified = verified;
  return result;
}

}  // namespace parcoll::workloads
