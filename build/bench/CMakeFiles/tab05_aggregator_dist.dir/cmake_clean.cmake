file(REMOVE_RECURSE
  "CMakeFiles/tab05_aggregator_dist.dir/tab05_aggregator_dist.cpp.o"
  "CMakeFiles/tab05_aggregator_dist.dir/tab05_aggregator_dist.cpp.o.d"
  "tab05_aggregator_dist"
  "tab05_aggregator_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_aggregator_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
