// Ablation — adaptive group-size selection (parcoll_num_groups = auto).
//
// The paper leaves "adaptively choosing the best group size" to future
// work. Our heuristic (core/file_area.hpp: every clean split the least
// group size permits; ~sqrt(P) groups under the intermediate view) is
// compared here against the baseline and against the best hand-tuned group
// count for each workload.
#include <cmath>

#include "bench/common.hpp"
#include "core/file_area.hpp"
#include "workloads/btio.hpp"
#include "workloads/ior.hpp"
#include "workloads/tileio.hpp"

int main(int argc, char** argv) {
  const bool smoke = parcoll::bench::smoke_requested(argc, argv);
  using namespace parcoll;
  using namespace parcoll::bench;
  BenchReport report("abl_adaptive_groups", argc, argv);

  header("Ablation: adaptive group size",
         "auto vs hand-tuned subgroup counts");
  std::printf("  %-14s %12s %12s %16s\n", "workload", "baseline",
              "hand-tuned", "auto (groups)");

  {
    const int nprocs = parcoll::bench::scaled(smoke, 512);
    const auto config = workloads::TileIOConfig::paper(nprocs);
    const auto base =
        workloads::run_tileio(config, nprocs, baseline_spec(), true);
    const auto tuned = workloads::run_tileio(
        config, nprocs, parcoll_spec(nprocs / 8), true);
    const auto automatic = workloads::run_tileio(
        config, nprocs, parcoll_spec(core::kAutoGroups), true);
    std::printf("  %-14s %10.1f %12.1f %12.1f (%d)\n", "tile-io/512",
                base.bandwidth_mib(), tuned.bandwidth_mib(),
                automatic.bandwidth_mib(), automatic.stats.last_num_groups);
    report.add("tileio/baseline", nprocs, base);
    report.add("tileio/tuned", nprocs, tuned);
    report.add("tileio/auto", nprocs, automatic);
  }
  {
    const int nprocs = parcoll::bench::scaled(smoke, 256);
    workloads::IorConfig config;
    config.block_size = 128ull << 20;
    const auto base = workloads::run_ior(config, nprocs, baseline_spec(), true);
    const auto tuned =
        workloads::run_ior(config, nprocs, parcoll_spec(32), true);
    const auto automatic = workloads::run_ior(
        config, nprocs, parcoll_spec(core::kAutoGroups), true);
    std::printf("  %-14s %10.1f %12.1f %12.1f (%d)\n", "ior/256",
                base.bandwidth_mib(), tuned.bandwidth_mib(),
                automatic.bandwidth_mib(), automatic.stats.last_num_groups);
    report.add("ior/baseline", nprocs, base);
    report.add("ior/tuned", nprocs, tuned);
    report.add("ior/auto", nprocs, automatic);
  }
  {
    const int nprocs = parcoll::bench::scaled_square(smoke, 256);
    workloads::BtIOConfig config;
    config.nsteps = 2;
    const int nc = static_cast<int>(std::lround(std::sqrt(nprocs)));
    const auto base = workloads::run_btio(config, nprocs, baseline_spec(), true);
    auto tuned_spec = parcoll_spec(nprocs / nc);
    tuned_spec.cb_nodes = nprocs / nc;
    const auto tuned = workloads::run_btio(config, nprocs, tuned_spec, true);
    auto auto_spec = parcoll_spec(core::kAutoGroups);
    auto_spec.cb_nodes = nc;  // one aggregator node per expected subgroup
    const auto automatic = workloads::run_btio(config, nprocs, auto_spec, true);
    std::printf("  %-14s %10.1f %12.1f %12.1f (%d)\n", "bt-io/256",
                base.bandwidth_mib(), tuned.bandwidth_mib(),
                automatic.bandwidth_mib(), automatic.stats.last_num_groups);
    report.add("btio/baseline", nprocs, base);
    report.add("btio/tuned", nprocs, tuned);
    report.add("btio/auto", nprocs, automatic);
  }
  footnote("auto lands on the clean-split count (tile-io, ior) and on");
  footnote("sqrt(P) intermediate groups (bt-io) without hand tuning");
  return 0;
}
