// bench_to_trajectory — fold per-bench JSON documents into a trajectory
// file (BENCH_smoke.json) that accumulates one entry per recorded run.
//
// Each input is a "parcoll-run" document written by a bench's --json flag
// (bench/common.hpp BenchReport). The trajectory keeps only the trend
// signal per point — series, nprocs, bandwidth, elapsed, sync share — so
// the file stays small as history accumulates.
//
// Usage:
//   bench_to_trajectory --out BENCH_smoke.json --label pr5 \
//       abl_group_size.json abl_seeds.json ...
//
// When --out already exists and is a valid trajectory document, the new
// entry is appended to its "runs" array; otherwise a fresh document is
// started. Exit status 0 on success, 2 on usage errors, 1 when an input
// cannot be read or parsed.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/run_export.hpp"

namespace {

using parcoll::obs::JsonValue;

constexpr const char* kTrajectorySchema = "parcoll-bench-trajectory";
constexpr int kTrajectoryVersion = 1;

JsonValue load_json(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open: " + path);
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return JsonValue::parse(buffer.str());
}

/// The trajectory entry for one bench document: bench name plus the
/// compact per-point trend row.
JsonValue fold_bench(const JsonValue& doc) {
  JsonValue entry = JsonValue::object();
  const JsonValue* tool = doc.find("tool");
  entry.set("bench", tool != nullptr ? tool->as_string() : "?");
  const JsonValue* config = doc.find("config");
  if (config != nullptr) {
    const JsonValue* smoke = config->find("smoke");
    if (smoke != nullptr) entry.set("smoke", smoke->as_bool());
  }
  JsonValue points = JsonValue::array();
  const JsonValue* in_points = doc.find("points");
  if (in_points != nullptr) {
    for (const JsonValue& point : in_points->items()) {
      JsonValue row = JsonValue::object();
      for (const char* key :
           {"series", "nprocs", "bandwidth_mib_s", "elapsed_s",
            "sync_fraction",
            // burst-buffer rows: write-behind trend signal.
            "durable_elapsed_s", "drain_s", "drain_wait_s", "bb_spills",
            // integrity rows: corruption-handling trend signal.
            "detected", "repaired", "scrub_repairs", "checksum_overhead_pct",
            // parcoll_check rows: checker throughput and coverage.
            "schedules", "distinct_schedules", "invariant_checks",
            "schedules_per_s", "violations",
            // micro_engine rows: DES engine scaling trend signal.
            "events_per_s", "wall_s", "peak_queue_depth",
            "stacks_allocated", "stacks_reused", "peak_rss_mib",
            "speedup_vs_seed", "bit_identical"}) {
        const JsonValue* value = point.find(key);
        if (value != nullptr) row.set(key, *value);
      }
      points.push(std::move(row));
    }
  }
  entry.set("points", std::move(points));
  return entry;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string label;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s --out TRAJECTORY.json [--label NAME] INPUT.json...\n",
          argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (out_path.empty() || inputs.empty()) {
    std::fprintf(stderr,
                 "usage: %s --out TRAJECTORY.json [--label NAME] "
                 "INPUT.json...\n",
                 argv[0]);
    return 2;
  }

  JsonValue run = JsonValue::object();
  if (!label.empty()) run.set("label", label);
  JsonValue benches = JsonValue::array();
  for (const std::string& input : inputs) {
    try {
      const JsonValue doc = load_json(input);
      const JsonValue* schema = doc.find("schema");
      if (schema == nullptr ||
          schema->as_string() != parcoll::obs::kRunSchema) {
        std::fprintf(stderr, "%s: not a parcoll-run document, skipping\n",
                     input.c_str());
        continue;
      }
      benches.push(fold_bench(doc));
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s: %s\n", input.c_str(), error.what());
      return 1;
    }
  }
  run.set("benches", std::move(benches));

  // Append to an existing trajectory when the out file already holds one.
  JsonValue trajectory = JsonValue::object();
  trajectory.set("schema", kTrajectorySchema);
  trajectory.set("version", kTrajectoryVersion);
  JsonValue runs = JsonValue::array();
  {
    std::ifstream probe(out_path);
    if (probe) {
      try {
        JsonValue existing = load_json(out_path);
        const JsonValue* schema = existing.find("schema");
        const JsonValue* old_runs = existing.find("runs");
        if (schema != nullptr && schema->as_string() == kTrajectorySchema &&
            old_runs != nullptr) {
          for (const JsonValue& old_run : old_runs->items()) {
            runs.push(old_run);
          }
        }
      } catch (const std::exception&) {
        // Unreadable/foreign file: start a fresh trajectory rather than
        // failing the CI step that calls us.
      }
    }
  }
  runs.push(std::move(run));
  trajectory.set("runs", std::move(runs));

  try {
    parcoll::obs::write_json_file(out_path, trajectory);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }
  std::printf("%s: %zu run(s)\n", out_path.c_str(),
              trajectory.find("runs")->items().size());
  return 0;
}
