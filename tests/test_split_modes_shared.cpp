// Split-phase collective I/O, file access modes, the shared file pointer,
// and file deletion.
#include <gtest/gtest.h>

#include <numeric>

#include "core/split.hpp"
#include "mpi/collectives.hpp"
#include "mpiio/file.hpp"
#include "workloads/pattern.hpp"

namespace parcoll {
namespace {

using dtype::Datatype;

TEST(SplitCollective, WriteBeginEndProducesCorrectBytes) {
  mpi::World world(machine::MachineModel::jaguar(8));
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "split1.dat");
    constexpr std::uint64_t kBlock = 4096;
    const fs::Extent mine{static_cast<std::uint64_t>(self.rank()) * kBlock,
                          kBlock};
    std::vector<std::byte> data(kBlock);
    workloads::fill_stream(data.data(), std::span(&mine, 1), 41);
    auto request = core::write_at_all_begin(file, mine.offset, data.data(), 1,
                                            Datatype::bytes(kBlock));
    self.busy(mpi::TimeCat::Compute, 0.01);  // overlapped computation
    const auto outcome = core::split_end(file, request);
    EXPECT_EQ(outcome.bytes, kBlock);
    mpi::barrier(self, self.comm_world());
    auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
    ok = ok && store &&
         workloads::verify_store(*store, file.fs_id(), std::span(&mine, 1), 41);
    file.close();
  });
  EXPECT_TRUE(ok);
}

TEST(SplitCollective, ReadBeginEndDeliversData) {
  mpi::World world(machine::MachineModel::jaguar(4));
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "split2.dat");
    constexpr std::uint64_t kBlock = 2048;
    const fs::Extent mine{static_cast<std::uint64_t>(self.rank()) * kBlock,
                          kBlock};
    {
      std::vector<std::byte> seed(kBlock);
      workloads::fill_stream(seed.data(), std::span(&mine, 1), 42);
      file.write_at(mine.offset, seed.data(), 1, Datatype::bytes(kBlock));
    }
    mpi::barrier(self, self.comm_world());
    std::vector<std::byte> back(kBlock);
    auto request = core::read_at_all_begin(file, mine.offset, back.data(), 1,
                                           Datatype::bytes(kBlock));
    self.busy(mpi::TimeCat::Compute, 0.005);
    core::split_end(file, request);
    ok = ok && workloads::check_stream(back.data(), std::span(&mine, 1), 42);
    file.close();
  });
  EXPECT_TRUE(ok);
}

TEST(SplitCollective, OverlapsComputationWithIo) {
  // Total time with overlap must beat compute-then-collective, and the
  // helper must actually run concurrently (end() returns promptly).
  const auto run = [](bool split) {
    mpi::World world(machine::MachineModel::jaguar(16), /*byte_true=*/false);
    double elapsed = 0;
    world.run([&](mpi::Rank& self) {
      mpiio::FileHandle file(self, self.comm_world(), "overlap.dat");
      constexpr std::uint64_t kBlock = 4ull << 20;
      const double t0 = self.now();
      if (split) {
        auto request = core::write_at_all_begin(
            file, static_cast<std::uint64_t>(self.rank()) * kBlock, nullptr,
            1, Datatype::bytes(kBlock));
        self.busy(mpi::TimeCat::Compute, 0.05);
        core::split_end(file, request);
      } else {
        self.busy(mpi::TimeCat::Compute, 0.05);
        core::write_at_all(file,
                           static_cast<std::uint64_t>(self.rank()) * kBlock,
                           nullptr, 1, Datatype::bytes(kBlock));
      }
      mpi::barrier(self, self.comm_world());
      if (self.rank() == 0) elapsed = self.now() - t0;
      file.close();
    });
    return elapsed;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(SplitCollective, ParcollHintsApplyToTheHelper) {
  mpi::World world(machine::MachineModel::jaguar(8));
  mpiio::Hints hints;
  hints.parcoll_num_groups = 2;
  hints.parcoll_min_group_size = 2;
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "split3.dat", hints);
    constexpr std::uint64_t kBlock = 1024;
    std::vector<std::byte> data(kBlock);
    auto request = core::write_at_all_begin(
        file, static_cast<std::uint64_t>(self.rank()) * kBlock, data.data(),
        1, Datatype::bytes(kBlock));
    const auto outcome = core::split_end(file, request);
    EXPECT_EQ(outcome.num_groups, 2);
    file.close();
  });
}

TEST(SplitCollective, EndWithoutBeginThrows) {
  mpi::World world(machine::MachineModel::jaguar(1));
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "split4.dat");
    core::SplitRequest request;
    EXPECT_THROW(core::split_end(file, request), std::logic_error);
    file.close();
  });
}

TEST(AccessModes, RdonlyRejectsWritesWronlyRejectsReads) {
  mpi::World world(machine::MachineModel::jaguar(1));
  world.run([&](mpi::Rank& self) {
    {
      mpiio::FileHandle writer(self, self.comm_world(), "modes.dat", {},
                               mpiio::kModeWronly | mpiio::kModeCreate);
      std::vector<std::byte> data(64);
      writer.write_at(0, data.data(), 1, Datatype::bytes(64));
      EXPECT_THROW(writer.read_at(0, data.data(), 1, Datatype::bytes(64)),
                   std::logic_error);
      writer.close();
    }
    {
      mpiio::FileHandle reader(self, self.comm_world(), "modes.dat", {},
                               mpiio::kModeRdonly);
      std::vector<std::byte> data(64);
      reader.read_at(0, data.data(), 1, Datatype::bytes(64));
      EXPECT_THROW(reader.write_at(0, data.data(), 1, Datatype::bytes(64)),
                   std::logic_error);
      EXPECT_THROW(core::write_at_all(reader, 0, data.data(), 1,
                                      Datatype::bytes(64)),
                   std::logic_error);
      reader.close();
    }
  });
}

TEST(AccessModes, OpenValidation) {
  mpi::World world(machine::MachineModel::jaguar(1));
  world.run([&](mpi::Rank& self) {
    // No CREATE and no such file.
    EXPECT_THROW(mpiio::FileHandle(self, self.comm_world(), "missing.dat", {},
                                   mpiio::kModeRdwr),
                 std::invalid_argument);
    // Exactly one of RDONLY/WRONLY/RDWR.
    EXPECT_THROW(
        mpiio::FileHandle(self, self.comm_world(), "x.dat", {},
                          mpiio::kModeRdonly | mpiio::kModeRdwr),
        std::invalid_argument);
    // EXCL on an existing file.
    mpiio::FileHandle first(self, self.comm_world(), "excl.dat", {},
                            mpiio::kModeRdwr | mpiio::kModeCreate);
    first.close();
    EXPECT_THROW(mpiio::FileHandle(self, self.comm_world(), "excl.dat", {},
                                   mpiio::kModeRdwr | mpiio::kModeCreate |
                                       mpiio::kModeExcl),
                 std::invalid_argument);
  });
}

TEST(AccessModes, AppendStartsAtEof) {
  mpi::World world(machine::MachineModel::jaguar(1));
  world.run([&](mpi::Rank& self) {
    {
      mpiio::FileHandle file(self, self.comm_world(), "append.dat");
      std::vector<std::byte> data(100);
      file.write_at(0, data.data(), 1, Datatype::bytes(100));
      file.close();
    }
    mpiio::FileHandle appender(self, self.comm_world(), "append.dat", {},
                               mpiio::kModeRdwr | mpiio::kModeAppend);
    EXPECT_EQ(appender.position(), 100u);
    appender.close();
  });
}

TEST(SharedPointer, ClaimsAreDisjointAndCoverTheFile) {
  // 8 ranks each append 3 records via the shared pointer: the 24 claimed
  // slots must be disjoint and cover [0, 24*64).
  mpi::World world(machine::MachineModel::jaguar(8));
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "shared.dat");
    std::vector<unsigned char> record(64,
                                      static_cast<unsigned char>(self.rank()));
    for (int i = 0; i < 3; ++i) {
      file.write_shared(record.data(), 1, Datatype::bytes(64));
    }
    mpi::barrier(self, self.comm_world());
    if (self.rank() == 0) {
      EXPECT_EQ(file.shared_position(), 24u * 64u);
      EXPECT_EQ(file.size(), 24u * 64u);
      // Every 64-byte slot is uniform (one writer) and each rank appears
      // exactly 3 times.
      auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
      const auto& bytes = store->contents(file.fs_id());
      std::vector<int> counts(8, 0);
      for (int slot = 0; slot < 24; ++slot) {
        const auto value = static_cast<unsigned char>(bytes[slot * 64]);
        ASSERT_LT(value, 8);
        for (int i = 1; i < 64; ++i) {
          ASSERT_EQ(static_cast<unsigned char>(bytes[slot * 64 + i]), value);
        }
        ++counts[value];
      }
      for (int count : counts) EXPECT_EQ(count, 3);
    }
    file.close();
  });
}

TEST(SharedPointer, ReadSharedConsumesSequentially) {
  mpi::World world(machine::MachineModel::jaguar(1));
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "sharedr.dat");
    std::vector<unsigned char> data(128);
    std::iota(data.begin(), data.end(), 0);
    file.write_at(0, data.data(), 1, Datatype::bytes(128));
    std::vector<unsigned char> a(64);
    std::vector<unsigned char> b(64);
    file.read_shared(a.data(), 1, Datatype::bytes(64));
    file.read_shared(b.data(), 1, Datatype::bytes(64));
    EXPECT_EQ(a[0], 0);
    EXPECT_EQ(b[0], 64);
    file.close();
  });
}

TEST(FileDelete, RemoveDropsTheNameAndRecreateIsFresh) {
  mpi::World world(machine::MachineModel::jaguar(1));
  world.run([&](mpi::Rank& self) {
    auto& fs = self.world().fs();
    {
      mpiio::FileHandle file(self, self.comm_world(), "victim.dat");
      std::vector<std::byte> data(32);
      file.write_at(0, data.data(), 1, Datatype::bytes(32));
      file.close();
    }
    EXPECT_TRUE(fs.exists("victim.dat"));
    fs.remove("victim.dat");
    EXPECT_FALSE(fs.exists("victim.dat"));
    EXPECT_THROW(fs.remove("victim.dat"), std::invalid_argument);
    // Re-creating yields a fresh (empty) file.
    mpiio::FileHandle fresh(self, self.comm_world(), "victim.dat");
    EXPECT_EQ(fresh.size(), 0u);
    fresh.close();
  });
}

}  // namespace
}  // namespace parcoll
