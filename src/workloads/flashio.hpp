// Flash I/O: checkpoint output of the FLASH astrophysics code (paper §5.4).
//
// Each process holds `nblocks` AMR blocks of nxb^3 double-precision zones,
// stored in memory with nguard guard cells on every side, for each of
// `nvars` variables. The checkpoint writes one dataset per variable; within
// a dataset, blocks are laid out by global block id. In the AMR ordering
// the processes' blocks interleave (block b of process p sits at dataset
// slot b*P + p), so each process contributes `nblocks` block-sized chunks
// per variable — far larger pieces and far fewer of them than Tile-IO or
// BT-IO produce, which is why the paper sees a smaller (but still real)
// ParColl gain here, and why writing the checkpoint without collective I/O
// collapses (interleaved un-aggregated writes thrash the OST extent locks).
//
// The paper's scale: 32^3 blocks, 80 blocks/process, 24 variables — a
// 60.8 GB checkpoint at 128 processes and 486 GB at 1024.
#pragma once

#include <cstdint>

#include "dtype/datatype.hpp"
#include "workloads/runner.hpp"

namespace parcoll::workloads {

struct FlashConfig {
  int nxb = 32;     // interior zones per side
  int nguard = 4;   // guard cells per side
  int nblocks = 80; // blocks per process
  int nvars = 24;   // unknowns written to the checkpoint
  /// Dataset block order: true = AMR interleaving (block b of process p at
  /// slot b*P + p); false = process-contiguous (slot p*nblocks + b).
  bool interleaved_blocks = true;
  /// Bytes per zone: 8 (double) for checkpoints, 4 (float) for plotfiles.
  std::uint64_t zone_size = 8;
  /// Corner plotfiles interpolate to cell corners: (nxb+1)^3 values/block.
  bool corner = false;
  /// Plotfile data is staged into a dense buffer first (no guard cells).
  bool dense_memory = false;

  /// The paper's three Flash I/O output files (§5.4).
  static FlashConfig checkpoint() { return FlashConfig{}; }
  static FlashConfig plotfile_centered();
  static FlashConfig plotfile_corner();

  [[nodiscard]] std::uint64_t zone_bytes() const { return zone_size; }
  [[nodiscard]] int block_side() const { return corner ? nxb + 1 : nxb; }
  [[nodiscard]] std::uint64_t block_bytes() const {
    const auto n = static_cast<std::uint64_t>(block_side());
    return n * n * n * zone_bytes();
  }
  /// Bytes one process contributes to one variable's dataset.
  [[nodiscard]] std::uint64_t rank_var_bytes() const {
    return static_cast<std::uint64_t>(nblocks) * block_bytes();
  }
  [[nodiscard]] std::uint64_t checkpoint_bytes(int nranks) const {
    return static_cast<std::uint64_t>(nvars) *
           static_cast<std::uint64_t>(nranks) * rank_var_bytes();
  }
  /// In-memory layout of one block: the nxb^3 interior of a guarded
  /// (nxb + 2*nguard)^3 array. Repeating it `nblocks` times walks the
  /// process's block list.
  [[nodiscard]] dtype::Datatype block_memtype() const;

  /// One variable's dataset layout for `rank`: its nblocks block slots.
  /// The extent is the whole dataset, so var v is reached by offsetting
  /// v * rank_var_bytes / 8 etypes into the view.
  [[nodiscard]] dtype::Datatype filetype(int rank, int nranks) const;
};

/// Write (or read back) the checkpoint: nvars collective calls.
RunResult run_flashio(const FlashConfig& config, int nranks,
                      const RunSpec& spec, bool write);

/// The checkpoint through the h5lite container, structured the way the
/// real FLASH benchmark writes its HDF5 file: one [nblocks_total, nxb,
/// nxb, nxb] dataset per variable, plus the small per-block metadata
/// datasets (refinement level, node type, coordinates, bounding boxes,
/// block sizes) and file attributes — the HDF5 bookkeeping the raw runner
/// omits. Write-only (the measured phase of Fig. 11).
RunResult run_flashio_h5(const FlashConfig& config, int nranks,
                         const RunSpec& spec);

}  // namespace parcoll::workloads
