#include "mpiio/sieve.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "mpiio/ext2ph.hpp"

namespace parcoll::mpiio {

namespace {

/// One sieve window: the pieces of the request it covers and the file span
/// [lo, hi) that must be read/written whole.
struct Window {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::size_t first_piece = 0;
  std::size_t piece_count = 0;
};

/// Group the request's extents into windows of at most `sieve` file bytes,
/// starting each window at a piece boundary. Like ROMIO's writebuf, a
/// window spans the full buffer length (clipped to the end of the whole
/// request), not just to its last piece — the read-modify-write covers
/// whatever else lives in the window, which is what couples interleaved
/// writers.
std::vector<Window> plan_windows(const std::vector<fs::Extent>& extents,
                                 std::uint64_t sieve) {
  std::vector<Window> windows;
  const std::uint64_t request_end = extents.back().end();
  std::size_t i = 0;
  while (i < extents.size()) {
    Window window;
    window.lo = extents[i].offset;
    window.first_piece = i;
    std::uint64_t hi = std::min(window.lo + sieve, request_end);
    while (i < extents.size() && extents[i].end() <= hi) {
      ++i;
      ++window.piece_count;
    }
    if (window.piece_count == 0) {
      // A single piece larger than the buffer: take it whole (it is
      // contiguous, so no sieving is actually needed for it).
      hi = extents[i].end();
      ++i;
      window.piece_count = 1;
    } else if (i < extents.size() && extents[i].offset < hi) {
      // The next piece straddles the window end: stop the window before it
      // rather than splitting the piece.
      hi = extents[i].offset;
    }
    window.hi = hi;
    windows.push_back(window);
  }
  return windows;
}

/// The locked RMW write loop over a prepared request's windows.
void sieve_write_windows(mpi::Rank& self, int fs_id, PreparedRequest& request,
                         std::uint64_t sieve_buffer_size) {
  auto& fs = self.world().fs();
  DirectTarget target(fs, fs_id);
  const auto windows = plan_windows(request.extents, sieve_buffer_size);
  std::vector<std::byte> window_buffer;
  std::uint64_t stream_pos = 0;
  for (const Window& window : windows) {
    const fs::Extent span{window.lo, window.hi - window.lo};
    fs.range_locks().lock(self.rank(), fs_id, span);
    const bool byte_true = self.world().byte_true();
    if (byte_true) window_buffer.assign(span.length, std::byte{0});
    target.read(self, std::span(&span, 1),
                byte_true ? window_buffer.data() : nullptr);
    std::uint64_t merged = 0;
    for (std::size_t k = 0; k < window.piece_count; ++k) {
      const fs::Extent& piece = request.extents[window.first_piece + k];
      if (byte_true && request.data() != nullptr) {
        std::memcpy(window_buffer.data() + (piece.offset - span.offset),
                    request.data() + stream_pos, piece.length);
      }
      stream_pos += piece.length;
      merged += piece.length;
    }
    self.touch_bytes(static_cast<double>(merged));
    target.write(self, std::span(&span, 1),
                 byte_true ? window_buffer.data() : nullptr);
    fs.range_locks().unlock(self.rank(), fs_id, span);
  }
}

/// The sieving read loop over a prepared request's windows.
void sieve_read_windows(mpi::Rank& self, int fs_id, PreparedRequest& request,
                        std::uint64_t sieve_buffer_size) {
  DirectTarget target(self.world().fs(), fs_id);
  const auto windows = plan_windows(request.extents, sieve_buffer_size);
  std::vector<std::byte> window_buffer;
  const bool byte_true = !request.packed.empty();
  std::uint64_t stream_pos = 0;
  for (const Window& window : windows) {
    const fs::Extent span{window.lo, window.hi - window.lo};
    if (byte_true) window_buffer.assign(span.length, std::byte{0});
    target.read(self, std::span(&span, 1),
                byte_true ? window_buffer.data() : nullptr);
    std::uint64_t extracted = 0;
    for (std::size_t k = 0; k < window.piece_count; ++k) {
      const fs::Extent& piece = request.extents[window.first_piece + k];
      if (byte_true) {
        std::memcpy(request.packed.data() + stream_pos,
                    window_buffer.data() + (piece.offset - span.offset),
                    piece.length);
      }
      stream_pos += piece.length;
      extracted += piece.length;
    }
    self.touch_bytes(static_cast<double>(extracted));
  }
}

}  // namespace

void sieve_rmw(mpi::Rank& self, int fs_id, PreparedRequest& request,
               bool is_write, std::uint64_t sieve_buffer_size) {
  if (is_write) {
    sieve_write_windows(self, fs_id, request, sieve_buffer_size);
  } else {
    sieve_read_windows(self, fs_id, request, sieve_buffer_size);
  }
}

void sieve_write_at(FileHandle& file, std::uint64_t offset, const void* buffer,
                    std::uint64_t count, const dtype::Datatype& memtype,
                    std::uint64_t sieve_buffer_size) {
  const auto before = file.time_snapshot();
  PreparedRequest request = file.prepare_write(offset, buffer, count, memtype);
  auto& self = file.self();
  auto& fs = self.world().fs();
  DirectTarget target(fs, file.fs_id());

  if (request.extents.size() <= 1) {
    // Contiguous: plain write, no sieve.
    target.write(self, request.extents, request.data());
  } else {
    sieve_write_windows(self, file.fs_id(), request, sieve_buffer_size);
  }

  FileStats delta;
  delta.time = FileHandle::time_delta(before, file.time_snapshot());
  delta.bytes_written = request.bytes;
  delta.independent_writes = 1;
  file.add_stats(delta);
}

void sieve_read_at(FileHandle& file, std::uint64_t offset, void* buffer,
                   std::uint64_t count, const dtype::Datatype& memtype,
                   std::uint64_t sieve_buffer_size) {
  const auto before = file.time_snapshot();
  PreparedRequest request = file.prepare_read(offset, buffer, count, memtype);
  auto& self = file.self();
  DirectTarget target(self.world().fs(), file.fs_id());

  if (request.extents.size() <= 1) {
    target.read(self, request.extents,
                request.packed.empty() ? nullptr : request.packed.data());
  } else {
    sieve_read_windows(self, file.fs_id(), request, sieve_buffer_size);
  }
  file.finish_read(request, buffer, count, memtype);

  FileStats delta;
  delta.time = FileHandle::time_delta(before, file.time_snapshot());
  delta.bytes_read = request.bytes;
  delta.independent_reads = 1;
  file.add_stats(delta);
}

}  // namespace parcoll::mpiio
