#include "obs/wall_report.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <tuple>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace parcoll::obs {

namespace {

using CycleKey = std::tuple<std::int64_t, std::int64_t, std::int64_t,
                            std::string>;  // call, group, cycle, stage

struct CycleAccum {
  double sync = 0;
  std::map<int, double> per_rank;
  double window_begin = 0;  // earliest sync leaf in this key
  double window_end = 0;    // latest sync leaf in this key
  bool windowed = false;
};

using Interval = std::pair<double, double>;

/// Merge intervals in place into a disjoint, sorted union.
void merge_intervals(std::vector<Interval>& intervals) {
  std::sort(intervals.begin(), intervals.end());
  std::size_t out = 0;
  for (const Interval& next : intervals) {
    if (out > 0 && next.first <= intervals[out - 1].second) {
      intervals[out - 1].second =
          std::max(intervals[out - 1].second, next.second);
    } else {
      intervals[out++] = next;
    }
  }
  intervals.resize(out);
}

/// Seconds of [begin, end) covered by the disjoint sorted union.
double overlap_with(const std::vector<Interval>& merged, double begin,
                    double end) {
  double covered = 0;
  for (const Interval& iv : merged) {
    if (iv.first >= end) break;
    if (iv.second <= begin) continue;
    covered += std::min(end, iv.second) - std::max(begin, iv.first);
  }
  return covered;
}

std::string format_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", s);
  return buf;
}

/// Parse "prefix[0003]" -> 3. The zero-padded index suffix is what
/// MetricsRegistry::indexed produces.
bool indexed_name(const std::string& key, const std::string& prefix,
                  int* index) {
  if (key.size() < prefix.size() + 3 ||
      key.compare(0, prefix.size(), prefix) != 0 ||
      key[prefix.size()] != '[' || key.back() != ']') {
    return false;
  }
  int value = 0;
  for (std::size_t i = prefix.size() + 1; i + 1 < key.size(); ++i) {
    const char c = key[i];
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + (c - '0');
  }
  *index = value;
  return true;
}

/// Fold the fs-layer metrics into the report: per-OST load rows and the
/// tail-latency summaries of every (non-job-sliced) quantile instrument.
void fold_metrics(WallReport& report, const MetricsRegistry& metrics) {
  std::map<int, OstWall> osts;
  int index = 0;
  for (const auto& [key, value] : metrics.gauges()) {
    if (indexed_name(key, "fs.ost.service_s", &index)) {
      osts[index].service_s = value;
    } else if (indexed_name(key, "fs.ost.queue_depth_s", &index)) {
      osts[index].peak_queue_s = value;
    }
  }
  for (const auto& [key, value] : metrics.counters()) {
    if (indexed_name(key, "fs.ost.rpcs", &index)) {
      osts[index].rpcs = value;
    } else if (indexed_name(key, "fs.ost.bytes", &index)) {
      osts[index].bytes = value;
    }
  }
  for (auto& [ost, wall] : osts) {
    wall.ost = ost;
    report.osts.push_back(wall);
  }
  std::sort(report.osts.begin(), report.osts.end(),
            [](const OstWall& a, const OstWall& b) {
              if (a.service_s != b.service_s) return a.service_s > b.service_s;
              return a.ost < b.ost;
            });

  for (const auto& [key, hist] : metrics.quantiles()) {
    if (hist.count() == 0 || key.find("{job=") != std::string::npos) {
      continue;  // per-job slices stay in the metrics dump, not here
    }
    LatencySummary summary;
    summary.name = key;
    summary.count = hist.count();
    summary.p50 = hist.quantile(0.50);
    summary.p95 = hist.quantile(0.95);
    summary.p99 = hist.quantile(0.99);
    summary.p999 = hist.quantile(0.999);
    summary.max = hist.max();
    report.latencies.push_back(std::move(summary));
  }
}

}  // namespace

WallReport build_wall_report(const SpanStore& store) {
  return build_wall_report(store, nullptr);
}

WallReport build_wall_report(const SpanStore& store,
                             const MetricsRegistry* metrics) {
  WallReport report;
  std::map<CycleKey, CycleAccum> accums;
  std::map<std::int64_t, double> group_sync;
  std::map<std::string, double> stage_sync;
  std::map<std::size_t, double> cat_time;
  int nranks = 0;
  std::vector<Interval> drain_spans;
  std::vector<Interval> drain_waits;

  for (const Span& span : store.spans()) {
    report.total_seconds = std::max(report.total_seconds, span.end);
    nranks = std::max(nranks, span.rank + 1);
    if (span.kind == SpanKind::Drain) {
      report.drain_seconds += span.end - span.begin;
      drain_spans.emplace_back(span.begin, span.end);
      continue;
    }
    if (span.kind != SpanKind::Phase) {
      continue;
    }
    const double dt = span.end - span.begin;
    cat_time[static_cast<std::size_t>(span.cat)] += dt;
    if (span.cat == mpi::TimeCat::DrainWait) {
      report.drain_exposed_wait += dt;
      drain_waits.emplace_back(span.begin, span.end);
    }
    if (span.cat != mpi::TimeCat::Sync) {
      continue;
    }
    report.total_sync += dt;
    if (span.call < 0) {
      continue;  // sync outside any collective call: not attributable
    }
    report.attributed_sync += dt;
    const std::string stage =
        span.parent != kNoSpan ? store.at(span.parent).name : "";
    CycleAccum& accum =
        accums[CycleKey{span.call, span.group, span.cycle, stage}];
    accum.sync += dt;
    accum.per_rank[span.rank] += dt;
    if (!accum.windowed || span.begin < accum.window_begin) {
      accum.window_begin = span.begin;
    }
    if (!accum.windowed || span.end > accum.window_end) {
      accum.window_end = span.end;
    }
    accum.windowed = true;
    group_sync[span.group] += dt;
    stage_sync[stage] += dt;
  }

  // Split drain work into hidden (no rank blocked on bb meanwhile) and the
  // remainder some rank's DrainWait overlapped.
  merge_intervals(drain_waits);
  report.drain_hidden = report.drain_seconds;
  for (const Interval& span : drain_spans) {
    report.drain_hidden -= overlap_with(drain_waits, span.first, span.second);
  }

  report.ranks.resize(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    report.ranks[static_cast<std::size_t>(r)].rank = r;
  }
  for (const Span& span : store.spans()) {
    if (span.kind == SpanKind::Phase && span.cat == mpi::TimeCat::Sync) {
      report.ranks[static_cast<std::size_t>(span.rank)].suffered +=
          span.end - span.begin;
    }
  }

  std::sort(drain_spans.begin(), drain_spans.end());
  for (const auto& [key, accum] : accums) {
    WallCycle cycle;
    cycle.call = std::get<0>(key);
    cycle.group = std::get<1>(key);
    cycle.cycle = std::get<2>(key);
    cycle.stage = std::get<3>(key);
    cycle.sync_seconds = accum.sync;
    cycle.nranks = static_cast<int>(accum.per_rank.size());
    if (accum.windowed) {
      // Drain *work* seconds inside this cycle's sync window (concurrent
      // node drains both count: two drains hide twice the fs time).
      for (const Interval& span : drain_spans) {
        if (span.first >= accum.window_end) break;
        if (span.second <= accum.window_begin) continue;
        cycle.hidden_by_bb += std::min(accum.window_end, span.second) -
                              std::max(accum.window_begin, span.first);
      }
    }
    // The straggler arrived last, so it waited least; everyone else's wait
    // in this key is time spent waiting *for it*.
    double min_wait = 0;
    double max_wait = 0;
    bool first = true;
    for (const auto& [rank, wait] : accum.per_rank) {
      if (first || wait < min_wait) {
        min_wait = wait;
        cycle.straggler = rank;
      }
      if (first || wait > max_wait) {
        max_wait = wait;
      }
      first = false;
    }
    cycle.straggler_lag = max_wait - min_wait;
    if (cycle.straggler >= 0) {
      RankWall& rw = report.ranks[static_cast<std::size_t>(cycle.straggler)];
      rw.caused += cycle.sync_seconds;
      ++rw.cycles_caused;
    }
    report.cycles.push_back(std::move(cycle));
  }
  std::sort(report.cycles.begin(), report.cycles.end(),
            [](const WallCycle& a, const WallCycle& b) {
              return a.sync_seconds > b.sync_seconds;
            });

  for (const auto& [group, seconds] : group_sync) {
    report.group_shares.push_back(WallShare{
        group >= 0 ? "group " + std::to_string(group) : "(no subgroup)",
        seconds});
  }
  for (const auto& [stage, seconds] : stage_sync) {
    report.stage_shares.push_back(
        WallShare{stage.empty() ? "(no stage)" : stage, seconds});
  }
  for (const auto& [cat, seconds] : cat_time) {
    report.category_shares.push_back(
        WallShare{mpi::to_string(static_cast<mpi::TimeCat>(cat)), seconds});
  }
  auto by_seconds = [](const WallShare& a, const WallShare& b) {
    return a.seconds > b.seconds;
  };
  std::sort(report.group_shares.begin(), report.group_shares.end(), by_seconds);
  std::sort(report.stage_shares.begin(), report.stage_shares.end(), by_seconds);
  std::sort(report.category_shares.begin(), report.category_shares.end(),
            by_seconds);
  if (metrics != nullptr) {
    fold_metrics(report, *metrics);
  }
  return report;
}

std::string format_wall_report(const WallReport& report, int top) {
  std::ostringstream os;
  os << "== collective wall report ==\n";
  os << "traced wall time     " << format_seconds(report.total_seconds)
     << " s\n";
  os << "total sync time      " << format_seconds(report.total_sync) << " s";
  if (report.total_seconds > 0) {
    char pct[16];
    std::snprintf(pct, sizeof(pct), " (%.1f%%",
                  100.0 * report.total_sync /
                      (report.total_seconds *
                       std::max<std::size_t>(report.ranks.size(), 1)));
    os << pct << " of rank-seconds)";
  }
  os << "\n";
  char cov[64];
  std::snprintf(cov, sizeof(cov), "attributed to (cycle, rank) pairs: %.2f%%",
                100.0 * report.coverage());
  os << cov << "\n";
  if (report.drain_seconds > 0 || report.drain_exposed_wait > 0) {
    os << "bb drain work        " << format_seconds(report.drain_seconds)
       << " s (hidden " << format_seconds(report.drain_hidden)
       << " s, exposed wait " << format_seconds(report.drain_exposed_wait)
       << " s)\n";
  }

  os << "\n-- wall share per category --\n";
  for (const WallShare& share : report.category_shares) {
    os << "  " << share.key;
    for (std::size_t pad = share.key.size(); pad < 11; ++pad) os << ' ';
    os << format_seconds(share.seconds) << " s\n";
  }

  if (!report.group_shares.empty()) {
    os << "\n-- sync share per subgroup --\n";
    for (const WallShare& share : report.group_shares) {
      os << "  " << share.key;
      for (std::size_t pad = share.key.size(); pad < 14; ++pad) os << ' ';
      os << format_seconds(share.seconds) << " s\n";
    }
  }

  if (!report.stage_shares.empty()) {
    os << "\n-- sync share per stage --\n";
    for (const WallShare& share : report.stage_shares) {
      os << "  " << share.key;
      for (std::size_t pad = share.key.size(); pad < 14; ++pad) os << ' ';
      os << format_seconds(share.seconds) << " s\n";
    }
  }

  os << "\n-- top straggler ranks (sync caused while others waited) --\n";
  std::vector<RankWall> by_caused = report.ranks;
  std::sort(by_caused.begin(), by_caused.end(),
            [](const RankWall& a, const RankWall& b) {
              return a.caused > b.caused;
            });
  int shown = 0;
  for (const RankWall& rw : by_caused) {
    if (shown >= top || rw.caused <= 0) break;
    os << "  rank " << rw.rank << ": caused " << format_seconds(rw.caused)
       << " s across " << rw.cycles_caused << " cycles (suffered "
       << format_seconds(rw.suffered) << " s)\n";
    ++shown;
  }
  if (shown == 0) {
    os << "  (no attributable sync time)\n";
  }

  os << "\n-- worst cycles --\n";
  shown = 0;
  for (const WallCycle& cycle : report.cycles) {
    if (shown >= top) break;
    os << "  call " << cycle.call;
    if (cycle.group >= 0) os << " group " << cycle.group;
    if (cycle.cycle >= 0) os << " cycle " << cycle.cycle;
    os << " [" << cycle.stage << "]: " << format_seconds(cycle.sync_seconds)
       << " s sync over " << cycle.nranks << " ranks, straggler rank "
       << cycle.straggler << " (lag " << format_seconds(cycle.straggler_lag)
       << " s)";
    if (report.drain_seconds > 0) {
      os << " [hidden by bb " << format_seconds(cycle.hidden_by_bb) << " s]";
    }
    os << "\n";
    ++shown;
  }
  if (shown == 0) {
    os << "  (none)\n";
  }

  if (!report.osts.empty()) {
    os << "\n-- busiest OSTs (by service time) --\n";
    shown = 0;
    for (const OstWall& ost : report.osts) {
      if (shown >= top) break;
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  ost %4d: service %s s, peak queue %s s, %llu rpcs, "
                    "%llu bytes\n",
                    ost.ost, format_seconds(ost.service_s).c_str(),
                    format_seconds(ost.peak_queue_s).c_str(),
                    static_cast<unsigned long long>(ost.rpcs),
                    static_cast<unsigned long long>(ost.bytes));
      os << line;
      ++shown;
    }
  }

  if (!report.latencies.empty()) {
    os << "\n-- latency quantiles --\n";
    for (const LatencySummary& lat : report.latencies) {
      os << "  " << lat.name;
      for (std::size_t pad = lat.name.size(); pad < 24; ++pad) os << ' ';
      char line[200];
      std::snprintf(line, sizeof(line),
                    "n=%llu p50=%s p95=%s p99=%s p99.9=%s max=%s\n",
                    static_cast<unsigned long long>(lat.count),
                    format_seconds(lat.p50).c_str(),
                    format_seconds(lat.p95).c_str(),
                    format_seconds(lat.p99).c_str(),
                    format_seconds(lat.p999).c_str(),
                    format_seconds(lat.max).c_str());
      os << line;
    }
  }
  return os.str();
}

JsonValue wall_report_json(const WallReport& report, int top) {
  JsonValue doc = JsonValue::object();
  doc.set("total_seconds", report.total_seconds);
  doc.set("total_sync_s", report.total_sync);
  doc.set("attributed_sync_s", report.attributed_sync);
  doc.set("coverage", report.coverage());
  doc.set("drain_s", report.drain_seconds);
  doc.set("drain_hidden_s", report.drain_hidden);
  doc.set("drain_exposed_wait_s", report.drain_exposed_wait);

  auto shares_json = [](const std::vector<WallShare>& shares) {
    JsonValue arr = JsonValue::array();
    for (const WallShare& share : shares) {
      JsonValue entry = JsonValue::object();
      entry.set("key", share.key).set("seconds", share.seconds);
      arr.push(std::move(entry));
    }
    return arr;
  };
  doc.set("category_shares", shares_json(report.category_shares));
  doc.set("group_shares", shares_json(report.group_shares));
  doc.set("stage_shares", shares_json(report.stage_shares));

  std::vector<RankWall> by_caused = report.ranks;
  std::sort(by_caused.begin(), by_caused.end(),
            [](const RankWall& a, const RankWall& b) {
              return a.caused > b.caused;
            });
  JsonValue stragglers = JsonValue::array();
  int shown = 0;
  for (const RankWall& rw : by_caused) {
    if (shown >= top || rw.caused <= 0) break;
    JsonValue entry = JsonValue::object();
    entry.set("rank", rw.rank)
        .set("caused_s", rw.caused)
        .set("suffered_s", rw.suffered)
        .set("cycles_caused", rw.cycles_caused);
    stragglers.push(std::move(entry));
    ++shown;
  }
  doc.set("top_stragglers", std::move(stragglers));

  JsonValue cycles = JsonValue::array();
  shown = 0;
  for (const WallCycle& cycle : report.cycles) {
    if (shown >= top) break;
    JsonValue entry = JsonValue::object();
    entry.set("call", cycle.call)
        .set("group", cycle.group)
        .set("cycle", cycle.cycle)
        .set("stage", cycle.stage)
        .set("sync_s", cycle.sync_seconds)
        .set("straggler", cycle.straggler)
        .set("straggler_lag_s", cycle.straggler_lag)
        .set("nranks", cycle.nranks)
        .set("hidden_by_bb_s", cycle.hidden_by_bb);
    cycles.push(std::move(entry));
    ++shown;
  }
  doc.set("worst_cycles", std::move(cycles));

  JsonValue osts = JsonValue::array();
  shown = 0;
  for (const OstWall& ost : report.osts) {
    if (shown >= top) break;
    JsonValue entry = JsonValue::object();
    entry.set("ost", ost.ost)
        .set("service_s", ost.service_s)
        .set("peak_queue_s", ost.peak_queue_s)
        .set("rpcs", ost.rpcs)
        .set("bytes", ost.bytes);
    osts.push(std::move(entry));
    ++shown;
  }
  doc.set("osts", std::move(osts));

  JsonValue latencies = JsonValue::array();
  for (const LatencySummary& lat : report.latencies) {
    JsonValue entry = JsonValue::object();
    entry.set("name", lat.name)
        .set("count", lat.count)
        .set("p50_s", lat.p50)
        .set("p95_s", lat.p95)
        .set("p99_s", lat.p99)
        .set("p999_s", lat.p999)
        .set("max_s", lat.max);
    latencies.push(std::move(entry));
  }
  doc.set("latencies", std::move(latencies));
  return doc;
}

}  // namespace parcoll::obs
