// Rank-to-node topology.
//
// The Cray XT places multiple MPI processes on each physical node (dual-core
// compute PEs in the paper). ParColl's aggregator-distribution rules are
// expressed in terms of physical nodes (paper Fig. 5), so the simulator
// needs an explicit rank->node mapping supporting the two common schemes:
//   block : N0(P0,P1) N1(P2,P3) ...
//   cyclic: N0(P0,P4) N1(P1,P5) ...
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

namespace parcoll::machine {

enum class Mapping { Block, Cyclic };

class Topology {
 public:
  Topology() = default;
  Topology(int nranks, int cores_per_node, Mapping mapping = Mapping::Block);

  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] int cores_per_node() const { return cores_per_node_; }
  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  [[nodiscard]] Mapping mapping() const { return mapping_; }

  /// Physical node hosting `rank`.
  [[nodiscard]] int node_of(int rank) const;

  /// Ranks hosted on `node`, in increasing rank order. The lists are
  /// precomputed at construction; the returned view stays valid for the
  /// lifetime of the Topology (aggregator selection walks them in a loop).
  [[nodiscard]] std::span<const int> ranks_on_node(int node) const;

 private:
  int nranks_ = 0;
  int cores_per_node_ = 1;
  int num_nodes_ = 0;
  Mapping mapping_ = Mapping::Block;
  /// Ranks sorted by (node, rank); node i's list is
  /// [node_begin_[i], node_begin_[i + 1]).
  std::vector<int> node_ranks_;
  std::vector<int> node_begin_;
};

}  // namespace parcoll::machine
