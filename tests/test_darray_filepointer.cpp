// darray datatypes (HPF-style distributions) and the individual file
// pointer API (seek/read/write/sync).
#include <gtest/gtest.h>

#include "dtype/datatype.hpp"
#include "mpi/collectives.hpp"
#include "core/parcoll.hpp"
#include "mpiio/file.hpp"
#include "workloads/pattern.hpp"

namespace parcoll {
namespace {

using dtype::Datatype;
using Dist = Datatype::Distribution;

TEST(Darray, BlockDistribution1D) {
  // 12 elements over 3 procs, block: rank r owns [4r, 4r+4).
  const std::int64_t sizes[] = {12};
  const Dist dists[] = {Dist::Block};
  const std::int64_t dargs[] = {0};
  const std::int64_t psizes[] = {3};
  for (int r = 0; r < 3; ++r) {
    const auto type =
        Datatype::darray(r, sizes, dists, dargs, psizes, Datatype::bytes(4));
    ASSERT_EQ(type.segments().size(), 1u);
    EXPECT_EQ(type.segments()[0],
              (dtype::Segment{static_cast<std::int64_t>(r) * 16, 16}));
    EXPECT_EQ(type.extent(), 48);
  }
}

TEST(Darray, CyclicDistribution1D) {
  // 8 elements over 2 procs, cyclic(1): rank 0 owns evens.
  const std::int64_t sizes[] = {8};
  const Dist dists[] = {Dist::Cyclic};
  const std::int64_t dargs[] = {0};
  const std::int64_t psizes[] = {2};
  const auto type =
      Datatype::darray(0, sizes, dists, dargs, psizes, Datatype::bytes(1));
  ASSERT_EQ(type.segments().size(), 4u);
  EXPECT_EQ(type.segments()[0], (dtype::Segment{0, 1}));
  EXPECT_EQ(type.segments()[1], (dtype::Segment{2, 1}));
  EXPECT_EQ(type.size(), 4u);
}

TEST(Darray, BlockCyclicWithDarg) {
  // 12 elements over 2 procs, cyclic(3): rank 1 owns [3,6) and [9,12).
  const std::int64_t sizes[] = {12};
  const Dist dists[] = {Dist::Cyclic};
  const std::int64_t dargs[] = {3};
  const std::int64_t psizes[] = {2};
  const auto type =
      Datatype::darray(1, sizes, dists, dargs, psizes, Datatype::bytes(2));
  ASSERT_EQ(type.segments().size(), 2u);
  EXPECT_EQ(type.segments()[0], (dtype::Segment{6, 6}));
  EXPECT_EQ(type.segments()[1], (dtype::Segment{18, 6}));
}

TEST(Darray, TwoDimensionalBlockBlock) {
  // 4x4 over a 2x2 grid: rank 3 (coords 1,1) owns the lower-right 2x2.
  const std::int64_t sizes[] = {4, 4};
  const Dist dists[] = {Dist::Block, Dist::Block};
  const std::int64_t dargs[] = {0, 0};
  const std::int64_t psizes[] = {2, 2};
  const auto type =
      Datatype::darray(3, sizes, dists, dargs, psizes, Datatype::bytes(1));
  ASSERT_EQ(type.segments().size(), 2u);
  EXPECT_EQ(type.segments()[0], (dtype::Segment{2 * 4 + 2, 2}));
  EXPECT_EQ(type.segments()[1], (dtype::Segment{3 * 4 + 2, 2}));
}

TEST(Darray, NoneDistributionKeepsWholeDimension) {
  const std::int64_t sizes[] = {2, 6};
  const Dist dists[] = {Dist::Block, Dist::None};
  const std::int64_t dargs[] = {0, 0};
  const std::int64_t psizes[] = {2, 1};
  const auto type =
      Datatype::darray(1, sizes, dists, dargs, psizes, Datatype::bytes(1));
  ASSERT_EQ(type.segments().size(), 1u);  // full second row
  EXPECT_EQ(type.segments()[0], (dtype::Segment{6, 6}));
}

TEST(Darray, RanksTileTheArray) {
  // Every element owned exactly once across the grid (2-D block/cyclic mix).
  const std::int64_t sizes[] = {6, 8};
  const Dist dists[] = {Dist::Cyclic, Dist::Block};
  const std::int64_t dargs[] = {0, 0};
  const std::int64_t psizes[] = {3, 2};
  std::vector<int> owner(48, -1);
  for (int r = 0; r < 6; ++r) {
    const auto type =
        Datatype::darray(r, sizes, dists, dargs, psizes, Datatype::bytes(1));
    for (const auto& seg : type.segments()) {
      for (std::uint64_t i = 0; i < seg.length; ++i) {
        const auto pos = static_cast<std::size_t>(seg.disp) + i;
        EXPECT_EQ(owner[pos], -1);
        owner[pos] = r;
      }
    }
  }
  for (int o : owner) EXPECT_NE(o, -1);
}

TEST(Darray, Validation) {
  const std::int64_t sizes[] = {4};
  const Dist dists[] = {Dist::None};
  const std::int64_t dargs[] = {0};
  const std::int64_t psizes[] = {2};  // None requires grid extent 1
  EXPECT_THROW(
      Datatype::darray(0, sizes, dists, dargs, psizes, Datatype::bytes(1)),
      std::invalid_argument);
  const std::int64_t ok_psizes[] = {1};
  EXPECT_THROW(
      Datatype::darray(5, sizes, dists, dargs, ok_psizes, Datatype::bytes(1)),
      std::invalid_argument);  // rank outside grid
}

TEST(Darray, UsableAsFileView) {
  // End to end: ranks write their darray pieces collectively; audit bytes.
  mpi::World world(machine::MachineModel::jaguar(4));
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "darray.dat");
    const std::int64_t sizes[] = {8, 8};
    const Dist dists[] = {Dist::Block, Dist::Cyclic};
    const std::int64_t dargs[] = {0, 2};
    const std::int64_t psizes[] = {2, 2};
    const auto type = Datatype::darray(self.rank(), sizes, dists, dargs,
                                       psizes, Datatype::bytes(8));
    file.set_view(0, 8, type);
    const std::uint64_t bytes = type.size();
    std::vector<std::byte> data(bytes);
    const auto extents = file.view().map(0, bytes);
    workloads::fill_buffer_for_extents(data.data(), Datatype::bytes(bytes), 1,
                                       extents, 17);
    core::write_at_all(file, 0, data.data(), 1, Datatype::bytes(bytes));
    mpi::barrier(self, self.comm_world());
    auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
    ok = ok && store &&
         workloads::verify_store(*store, file.fs_id(), extents, 17);
    file.close();
  });
  EXPECT_TRUE(ok);
}

TEST(FilePointer, SeekSetCurAndPosition) {
  mpi::World world(machine::MachineModel::jaguar(1));
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "fp.dat");
    EXPECT_EQ(file.position(), 0u);
    file.seek(100, mpiio::FileHandle::Whence::Set);
    EXPECT_EQ(file.position(), 100u);
    file.seek(-40, mpiio::FileHandle::Whence::Cur);
    EXPECT_EQ(file.position(), 60u);
    EXPECT_THROW(file.seek(-100, mpiio::FileHandle::Whence::Cur),
                 std::invalid_argument);
    file.close();
  });
}

TEST(FilePointer, SequentialWritesAppendAndReadBack) {
  mpi::World world(machine::MachineModel::jaguar(1));
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "fp2.dat");
    const dtype::Datatype chunk = Datatype::bytes(64);
    for (int i = 0; i < 4; ++i) {
      std::vector<std::byte> data(64);
      const fs::Extent extent{static_cast<std::uint64_t>(i) * 64, 64};
      workloads::fill_stream(data.data(), std::span(&extent, 1), 8);
      file.write(data.data(), 1, chunk);
    }
    EXPECT_EQ(file.position(), 256u);
    file.seek(0, mpiio::FileHandle::Whence::Set);
    std::vector<std::byte> back(256);
    file.read(back.data(), 1, Datatype::bytes(256));
    const fs::Extent whole{0, 256};
    ok = workloads::check_stream(back.data(), std::span(&whole, 1), 8);
    EXPECT_EQ(file.position(), 256u);
    file.close();
  });
  EXPECT_TRUE(ok);
}

TEST(FilePointer, SeekEndOnContiguousView) {
  mpi::World world(machine::MachineModel::jaguar(1));
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "fp3.dat");
    std::vector<std::byte> data(128);
    file.write(data.data(), 1, Datatype::bytes(128));
    file.seek(0, mpiio::FileHandle::Whence::End);
    EXPECT_EQ(file.position(), 128u);
    file.seek(-28, mpiio::FileHandle::Whence::End);
    EXPECT_EQ(file.position(), 100u);
    file.close();
  });
}

TEST(FilePointer, SeekEndRejectedOnHoleyView) {
  mpi::World world(machine::MachineModel::jaguar(1));
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "fp4.dat");
    file.set_view(0, 8, Datatype::resized(Datatype::bytes(8), 0, 64));
    EXPECT_THROW(file.seek(0, mpiio::FileHandle::Whence::End),
                 std::logic_error);
    file.close();
  });
}

TEST(FilePointer, SetViewResetsPointerAndSyncCostsTime) {
  mpi::World world(machine::MachineModel::jaguar(1));
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "fp5.dat");
    file.seek(42, mpiio::FileHandle::Whence::Set);
    file.set_view(0, 1, Datatype::bytes(1));
    EXPECT_EQ(file.position(), 0u);
    const double t0 = self.now();
    file.sync();
    EXPECT_GT(self.now(), t0);
    file.close();
  });
}

TEST(FilePointer, PointerCollectivesAdvance) {
  mpi::World world(machine::MachineModel::jaguar(4));
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "fp6.dat");
    // Rank-strided view; two successive collective writes walk the stream.
    const Datatype slot = Datatype::resized(Datatype::bytes(32), 0, 128);
    file.set_view(static_cast<std::uint64_t>(self.rank()) * 32, 32, slot);
    const Datatype chunk = Datatype::bytes(64);  // two slots per call
    const auto extents = file.view().map(0, 128);
    std::vector<std::byte> data(128);
    workloads::fill_buffer_for_extents(data.data(), Datatype::bytes(128), 1,
                                       extents, 21);
    core::write_all(file, data.data(), 1, chunk);
    EXPECT_EQ(file.position(), 2u);  // 64 bytes = 2 etypes of 32
    core::write_all(file, data.data() + 64, 1, chunk);
    EXPECT_EQ(file.position(), 4u);
    mpi::barrier(self, self.comm_world());
    auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
    ok = ok && store &&
         workloads::verify_store(*store, file.fs_id(), extents, 21);
    file.close();
  });
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace parcoll
