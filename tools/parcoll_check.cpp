// parcoll_check — deterministic schedule-exploration model checker.
//
// Explores event tie-break schedules (seeded-random probes and bounded DFS
// over choice points) across a matrix of workload x implementation x
// fault-plan configurations, checking on every schedule that
//   - subgroup collectives match across members (kind, comm, ordinal),
//   - aggregator re-election terminates without deadlock or split-brain,
//   - fault-free schedules never deadlock, and
//   - completed runs leave byte-identical file contents to the clean
//     program-order run (Lustre failover only redirects timing).
//
// Every violation prints a one-line replay command; the token re-executes
// the exact failing interleaving.
//
// Examples:
//   parcoll_check --smoke
//   parcoll_check --config tileio-reelection --budget 200 --mode random
//   parcoll_check --config ior-degrade-drop --schedule r1234
//   parcoll_check --inject-bug mismatch --expect-violation
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "check/explore.hpp"
#include "obs/json.hpp"
#include "obs/run_export.hpp"
#include "sim/random.hpp"

namespace {

using namespace parcoll;
using check::CheckConfig;
using check::ExploreMode;
using check::ExploreOptions;
using check::ExploreStats;
using check::InjectedBug;
using check::ScheduleOutcome;

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --smoke                 run the standing smoke matrix; fail unless\n"
      "                          >= --min-distinct distinct schedules pass\n"
      "  --list                  list the smoke configurations and exit\n"
      "  --config NAME           explore one configuration (repeatable)\n"
      "  --mode random|dfs|both  exploration strategy (default both)\n"
      "  --budget N              schedules per configuration (default 64)\n"
      "  --seed N                base seed for random probes (default 1)\n"
      "  --dfs-depth N           DFS backtrack horizon (default 8)\n"
      "  --min-distinct N        coverage floor for --smoke (default 500)\n"
      "  --keep-going            report all violations, not just the first\n"
      "  --schedule TOKEN        replay one schedule on --config and print\n"
      "                          its outcome (p, r<seed>, d<c0>.<c1>...)\n"
      "  --inject-bug KIND       run the self-test probe program with a\n"
      "                          deliberate bug: mismatch|deadlock|none;\n"
      "                          'corruption' runs the checksum-pipeline\n"
      "                          planted-bug contrast instead\n"
      "  --expect-violation      exit 0 only if exploration finds the bug\n"
      "  --json FILE.json        write a parcoll-run document with one\n"
      "                          point per configuration\n",
      argv0);
}

/// Outcome of one replayed schedule, rendered for a human.
int report_outcome(const std::string& what, const ScheduleOutcome& outcome) {
  std::printf("%s: schedule %s, %zu choice points\n", what.c_str(),
              outcome.token.c_str(), outcome.log.size());
  if (outcome.completed) {
    std::printf("  completed; digest=%llx verified=%s\n",
                static_cast<unsigned long long>(outcome.digest),
                outcome.verified ? "yes" : "no");
  } else {
    std::printf("  %s: %s\n", outcome.deadlock ? "DEADLOCK" : "ERROR",
                outcome.error.c_str());
  }
  if (outcome.faults.any()) {
    std::printf(
        "  faults: retries=%llu failovers=%llu drops=%llu reelections=%llu "
        "stalls=%llu\n",
        static_cast<unsigned long long>(outcome.faults.retries),
        static_cast<unsigned long long>(outcome.faults.failovers),
        static_cast<unsigned long long>(outcome.faults.drops),
        static_cast<unsigned long long>(outcome.faults.reelections),
        static_cast<unsigned long long>(outcome.faults.stalls));
    if (outcome.faults.corrupt_injected > 0) {
      std::printf(
          "  corruption: injected=%llu detected=%llu repaired=%llu "
          "scrub_repairs=%llu\n",
          static_cast<unsigned long long>(outcome.faults.corrupt_injected),
          static_cast<unsigned long long>(outcome.faults.corrupt_detected),
          static_cast<unsigned long long>(outcome.faults.corrupt_repaired),
          static_cast<unsigned long long>(outcome.faults.scrub_repairs));
    }
  }
  std::printf("  invariant checks: %llu\n",
              static_cast<unsigned long long>(outcome.invariant_checks));
  for (const check::Violation& violation : outcome.violations) {
    std::printf("  VIOLATION [%s] %s\n", violation.invariant.c_str(),
                violation.detail.c_str());
  }
  return outcome.violations.empty() && !outcome.deadlock ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool list = false;
  bool keep_going = false;
  bool expect_violation = false;
  std::uint64_t min_distinct = 500;
  std::vector<std::string> selected;
  std::string schedule_token;
  std::string inject_bug;
  std::string json_path;
  ExploreOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--config") {
      selected.push_back(next());
    } else if (arg == "--mode") {
      const std::string value = next();
      if (value == "random") {
        options.mode = ExploreMode::Random;
      } else if (value == "dfs") {
        options.mode = ExploreMode::Dfs;
      } else if (value == "both") {
        options.mode = ExploreMode::Both;
      } else {
        std::fprintf(stderr, "bad --mode (random|dfs|both): %s\n",
                     value.c_str());
        return 2;
      }
    } else if (arg == "--budget") {
      options.budget = std::stoi(next());
    } else if (arg == "--seed") {
      options.seed = std::stoull(next());
    } else if (arg == "--dfs-depth") {
      options.dfs_depth = std::stoi(next());
    } else if (arg == "--min-distinct") {
      min_distinct = std::stoull(next());
    } else if (arg == "--keep-going") {
      keep_going = true;
    } else if (arg == "--schedule") {
      schedule_token = next();
    } else if (arg == "--inject-bug") {
      inject_bug = next();
    } else if (arg == "--expect-violation") {
      expect_violation = true;
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  options.stop_on_violation = !keep_going;

  const std::vector<CheckConfig> all = check::smoke_configs();
  if (list) {
    for (const CheckConfig& config : all) {
      std::printf("%-20s %s x%d %s%s\n", config.name.c_str(),
                  config.workload.c_str(), config.nprocs,
                  workloads::to_string(config.impl),
                  config.fault_spec.empty()
                      ? ""
                      : ("  [" + config.fault_spec + "]").c_str());
    }
    return 0;
  }

  // --- Self-test: deliberately buggy probe program ---------------------
  if (inject_bug == "corruption") {
    // Planted-bug contrast for the checksum pipeline: the same corrupting
    // fault plan must slip through silently with integrity off (digest
    // diverges from the clean reference) and heal completely at
    // integrity=repair (digest matches). Both halves are expectations, so
    // the exit status is the same with or without --expect-violation.
    const ExploreStats stats = check::corruption_selftest();
    std::printf("inject-bug corruption: %llu runs, %llu expectation %s\n",
                static_cast<unsigned long long>(stats.schedules),
                static_cast<unsigned long long>(stats.violations.size()),
                stats.violations.size() == 1 ? "failure" : "failures");
    for (const check::ExploreViolation& violation : stats.violations) {
      std::printf("  FAILED [%s] %s (schedule %s)\n",
                  violation.invariant.c_str(), violation.detail.c_str(),
                  violation.token.c_str());
    }
    if (stats.ok()) {
      std::printf(
          "  checksums off let the corruption through; integrity=repair "
          "restored the clean bytes\n");
    }
    return stats.ok() ? 0 : 1;
  }
  if (!inject_bug.empty()) {
    InjectedBug bug;
    if (inject_bug == "mismatch") {
      bug = InjectedBug::Mismatch;
    } else if (inject_bug == "deadlock") {
      bug = InjectedBug::Deadlock;
    } else if (inject_bug == "none") {
      bug = InjectedBug::None;
    } else {
      std::fprintf(stderr,
                   "bad --inject-bug (mismatch|deadlock|corruption|none): %s\n",
                   inject_bug.c_str());
      return 2;
    }
    if (!schedule_token.empty()) {
      // Replay one schedule against the probe program.
      const ScheduleOutcome outcome = check::run_bug_schedule(
          sim::SchedulePolicy::parse(schedule_token), bug);
      const int status = report_outcome("inject-bug " + inject_bug, outcome);
      return expect_violation ? (status == 0 ? 1 : 0) : status;
    }
    // Explore: the bug only fires on schedules where the second fiber to
    // start is not rank 1, so program order is clean and random probes
    // find it quickly.
    for (int i = 0; i < options.budget; ++i) {
      const std::uint64_t seed =
          sim::hash_combine(options.seed, static_cast<std::uint64_t>(i));
      const ScheduleOutcome outcome =
          check::run_bug_schedule(sim::SchedulePolicy::random(seed), bug);
      if (!outcome.violations.empty() || outcome.deadlock) {
        std::printf("inject-bug %s: caught on schedule %s\n",
                    inject_bug.c_str(), outcome.token.c_str());
        for (const check::Violation& violation : outcome.violations) {
          std::printf("  VIOLATION [%s] %s\n", violation.invariant.c_str(),
                      violation.detail.c_str());
        }
        std::printf("  replay: parcoll_check --inject-bug %s --schedule %s\n",
                    inject_bug.c_str(), outcome.token.c_str());
        return expect_violation ? 0 : 1;
      }
    }
    std::printf("inject-bug %s: no violation in %d schedules\n",
                inject_bug.c_str(), options.budget);
    return expect_violation ? 1 : 0;
  }

  // --- Configuration selection ----------------------------------------
  std::vector<CheckConfig> configs;
  if (smoke || selected.empty()) {
    configs = all;
  }
  for (const std::string& name : selected) {
    bool found = false;
    for (const CheckConfig& config : all) {
      if (config.name == name) {
        configs.push_back(config);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown --config %s (try --list)\n", name.c_str());
      return 2;
    }
  }

  // --- Single-schedule replay ------------------------------------------
  if (!schedule_token.empty()) {
    if (configs.size() != 1) {
      std::fprintf(stderr, "--schedule needs exactly one --config\n");
      return 2;
    }
    sim::SchedulePolicy policy;
    try {
      policy = sim::SchedulePolicy::parse(schedule_token);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s\n", error.what());
      return 2;
    }
    return report_outcome(configs[0].name,
                          check::run_schedule(configs[0], policy));
  }

  // --- Exploration ------------------------------------------------------
  if (smoke && options.budget == 64) {
    // The smoke matrix needs enough budget to clear the coverage floor
    // with headroom; callers can still override --budget explicitly.
    options.budget = 90;
  }
  ExploreStats total;
  obs::JsonValue points = obs::JsonValue::array();
  const auto t0 = std::chrono::steady_clock::now();
  for (const CheckConfig& config : configs) {
    const auto c0 = std::chrono::steady_clock::now();
    const ExploreStats stats = check::explore(config, options);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - c0)
            .count();
    std::printf(
        "%-20s %5llu schedules (%llu distinct), %llu invariant checks, "
        "%llu faulted, %.1f sched/s%s\n",
        config.name.c_str(), static_cast<unsigned long long>(stats.schedules),
        static_cast<unsigned long long>(stats.distinct),
        static_cast<unsigned long long>(stats.invariant_checks),
        static_cast<unsigned long long>(stats.faulted_runs),
        elapsed > 0 ? static_cast<double>(stats.schedules) / elapsed : 0.0,
        stats.ok() ? "" : "  FAIL");
    obs::JsonValue row = obs::JsonValue::object();
    row.set("series", config.name);
    row.set("nprocs", config.nprocs);
    row.set("schedules", stats.schedules);
    row.set("distinct_schedules", stats.distinct);
    row.set("invariant_checks", stats.invariant_checks);
    row.set("elapsed_s", elapsed);
    row.set("schedules_per_s",
            elapsed > 0 ? static_cast<double>(stats.schedules) / elapsed : 0.0);
    row.set("violations",
            static_cast<std::uint64_t>(stats.violations.size()));
    points.push(std::move(row));
    total += stats;
    if (!stats.ok() && options.stop_on_violation) {
      break;
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf(
      "total: %llu schedules (%llu distinct) across %zu configs, "
      "%llu invariant checks, %.2fs\n",
      static_cast<unsigned long long>(total.schedules),
      static_cast<unsigned long long>(total.distinct), configs.size(),
      static_cast<unsigned long long>(total.invariant_checks), wall);
  for (const check::ExploreViolation& violation : total.violations) {
    std::printf("VIOLATION %s [%s] %s\n  replay: %s\n",
                violation.config.c_str(), violation.invariant.c_str(),
                violation.detail.c_str(),
                check::replay_command(violation).c_str());
  }

  if (!json_path.empty()) {
    obs::JsonValue config = obs::JsonValue::object();
    config.set("smoke", smoke);
    config.set("budget", options.budget);
    config.set("seed", options.seed);
    config.set("configs", static_cast<std::uint64_t>(configs.size()));
    obs::JsonValue doc = obs::run_document("parcoll_check", std::move(config));
    doc.set("points", std::move(points));
    doc.set("schedules", total.schedules);
    doc.set("distinct_schedules", total.distinct);
    doc.set("violations", static_cast<std::uint64_t>(total.violations.size()));
    try {
      obs::write_json_file(json_path, doc);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s\n", error.what());
      return 1;
    }
    std::printf("json: %s\n", json_path.c_str());
  }

  if (!total.ok()) {
    return 1;
  }
  if (smoke && total.distinct < min_distinct) {
    std::fprintf(stderr,
                 "coverage floor missed: %llu distinct schedules < %llu\n",
                 static_cast<unsigned long long>(total.distinct),
                 static_cast<unsigned long long>(min_distinct));
    return 1;
  }
  return 0;
}
