// Shared scaffolding for the figure-reproduction benches: table printing
// and the standard run configurations (series named as in the paper:
// "Cray" = plain ext2ph with default hints, "ParColl-N" = N subgroups,
// "Cray w/o Coll" = POSIX-style independent writes).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "obs/run_export.hpp"
#include "workloads/runner.hpp"

namespace parcoll::bench {

/// --smoke: CI runs every ablation as a tiny smoke test. Benches pass
/// their full process count through scaled(), which shrinks it when the
/// flag was given (full figures by default).
inline bool smoke_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return true;
  }
  return false;
}

inline int scaled(bool smoke, int full_nprocs) {
  return smoke ? std::max(8, full_nprocs / 8) : full_nprocs;
}

/// Like scaled(), but lands on a perfect square (BT-IO's sqrt(P) x sqrt(P)
/// process grid requirement survives the smoke shrink).
inline int scaled_square(bool smoke, int full_nprocs) {
  const int s = scaled(smoke, full_nprocs);
  int root = static_cast<int>(std::sqrt(static_cast<double>(s)));
  while ((root + 1) * (root + 1) <= s) ++root;
  return std::max(9, root * root);
}

inline void header(const std::string& figure, const std::string& caption) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), caption.c_str());
  std::printf("==============================================================\n");
}

inline void footnote(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

/// A row of the standard bandwidth table.
inline void row(const std::string& series, const workloads::RunResult& result) {
  std::printf("  %-22s %10.1f MiB/s  elapsed %8.3f s  sync %5.1f%%\n",
              series.c_str(), result.bandwidth_mib(), result.elapsed,
              100.0 * result.sync_fraction());
}

/// The per-category breakdown row (Fig. 2 style), seconds summed over ranks.
inline void breakdown_row(int nprocs, const workloads::RunResult& result) {
  using mpi::TimeCat;
  std::printf("  %6d %10.2f %10.2f %10.2f %10.2f %10.2f  %5.1f%%\n", nprocs,
              result.sum[TimeCat::Compute], result.sum[TimeCat::P2P],
              result.sum[TimeCat::Sync], result.sum[TimeCat::IO],
              result.sum.total(), 100.0 * result.sync_fraction());
}

/// Machine-readable bench export: `--json FILE` makes the bench write a
/// versioned "parcoll-run" document with one point per measured run, for
/// tools/bench_to_trajectory and the CI perf-trajectory job. Without the
/// flag every method is a no-op, so benches call add() unconditionally.
class BenchReport {
 public:
  BenchReport(std::string bench, int argc, char** argv)
      : bench_(std::move(bench)), points_(obs::JsonValue::array()) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--json") path_ = argv[i + 1];
    }
    smoke_ = smoke_requested(argc, argv);
  }
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  /// Record one measured point (series label + process count + result).
  /// `extras` are bench-specific top-level keys the trajectory folder
  /// keeps (e.g. abl_integrity's checksum_overhead_pct).
  void add(const std::string& series, int nprocs,
           const workloads::RunResult& result,
           const std::vector<std::pair<std::string, double>>& extras = {}) {
    if (path_.empty()) return;
    obs::JsonValue point = obs::JsonValue::object();
    point.set("series", series)
        .set("nprocs", nprocs)
        .set("bandwidth_mib_s", result.bandwidth_mib())
        .set("elapsed_s", result.elapsed)
        .set("sync_fraction", result.sync_fraction())
        .set("result", workloads::run_result_json(result));
    if (result.stats.bb_staged_segments > 0 || result.stats.bb_spills > 0) {
      // Burst-buffer runs carry the write-behind trend signal too.
      point.set("durable_elapsed_s", result.total_elapsed)
          .set("drain_s", result.stats.time[mpi::TimeCat::Drain])
          .set("drain_wait_s", result.sum[mpi::TimeCat::DrainWait])
          .set("bb_spills", result.stats.bb_spills);
    }
    if (result.metrics) {
      // Tail-latency trend signal (virtual-time, so deterministic): the
      // RPC and collective-cycle quantiles, when the run recorded them.
      const auto& quantiles = result.metrics->quantiles();
      auto tail = [&](const char* name, const char* p50_key,
                      const char* p99_key) {
        const auto it = quantiles.find(name);
        if (it == quantiles.end() || it->second.count() == 0) return;
        point.set(p50_key, it->second.quantile(0.50));
        point.set(p99_key, it->second.quantile(0.99));
      };
      tail("fs.rpc.latency_s", "rpc_p50_s", "rpc_p99_s");
      tail("coll.cycle_s", "cycle_p50_s", "cycle_p99_s");
    }
    for (const auto& extra : extras) {
      point.set(extra.first, extra.second);
    }
    points_.push(std::move(point));
  }

  ~BenchReport() {
    if (path_.empty()) return;
    try {
      obs::JsonValue config = obs::JsonValue::object();
      config.set("smoke", smoke_);
      obs::JsonValue doc = obs::run_document(bench_, std::move(config));
      doc.set("points", std::move(points_));
      obs::write_json_file(path_, doc);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "bench json: %s\n", error.what());
    }
  }

 private:
  std::string bench_;
  std::string path_;
  bool smoke_ = false;
  obs::JsonValue points_;
};

// The standard specs run with metrics on: observers never advance the
// virtual clock, so the figures are unchanged, and every bench point gets
// the tail-latency quantiles (rpc_p50_s/rpc_p99_s/...) for the trajectory.

inline workloads::RunSpec baseline_spec() {
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::Ext2ph;
  spec.byte_true = false;
  spec.metrics = true;
  return spec;
}

inline workloads::RunSpec parcoll_spec(int groups, int min_group_size = 8) {
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::ParColl;
  spec.parcoll_groups = groups;
  spec.min_group_size = min_group_size;
  spec.byte_true = false;
  spec.metrics = true;
  return spec;
}

inline workloads::RunSpec posix_spec() {
  workloads::RunSpec spec;
  spec.impl = workloads::Impl::PosixIndependent;
  spec.byte_true = false;
  spec.metrics = true;
  return spec;
}

}  // namespace parcoll::bench
