// Split-phase collective I/O (MPI_File_write_at_all_begin / _end).
//
// The paper (§2.3) observes that Catamount's single-threaded processes
// rule out split-phase collective I/O [Dickens & Thakur], and predicts
// that even with threads (the then-upcoming Compute Node Linux), hiding
// I/O behind computation "does not do away with the need of
// synchronization ... the relative dominance of synchronization cost could
// become even more pronounced with the diminishing I/O time."
//
// The simulator can model that threaded machine: begin() hands the
// collective to a helper fiber (the progress thread) running on the same
// rank, and end() joins it. The bench abl_split_phase tests the paper's
// prediction directly.
//
// Semantics: begin() is itself collective (it duplicates a private
// communicator for the helper fibers and packs the buffer, which must stay
// untouched until end()). Exactly one split operation may be outstanding
// per file handle, and it must be completed before the file is closed.
#pragma once

#include <memory>

#include "core/parcoll.hpp"

namespace parcoll::core {

namespace detail {
struct SplitState;
}

/// Handle to an outstanding split collective.
class SplitRequest {
 public:
  SplitRequest() = default;
  /// Internal: wraps the engine's state record (use the begin functions).
  explicit SplitRequest(std::shared_ptr<detail::SplitState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool done() const;

 private:
  friend CollectiveOutcome split_end(mpiio::FileHandle&, SplitRequest&);
  std::shared_ptr<detail::SplitState> state_;
};

/// Start a collective write at `offset`; the operation proceeds on a
/// helper fiber while the caller computes. `buffer` must remain valid and
/// unmodified until split_end.
SplitRequest write_at_all_begin(mpiio::FileHandle& file, std::uint64_t offset,
                                const void* buffer, std::uint64_t count,
                                const dtype::Datatype& memtype);

/// Start a collective read at `offset`; the data lands in `buffer` by the
/// time split_end returns.
SplitRequest read_at_all_begin(mpiio::FileHandle& file, std::uint64_t offset,
                               void* buffer, std::uint64_t count,
                               const dtype::Datatype& memtype);

/// Complete an outstanding split collective: blocks until the helper
/// finishes (the wait is charged to Sync), merges the helper's time into
/// the file statistics, and (for reads) unpacks into the user buffer.
CollectiveOutcome split_end(mpiio::FileHandle& file, SplitRequest& request);

}  // namespace parcoll::core
