// parcoll_sweep — parameter sweeps to CSV, for plotting the paper's
// figures (or your own) with external tooling.
//
// Emits one CSV row per (workload, impl, nprocs, groups) combination:
//   workload,impl,nprocs,groups,groups_used,mode,intranode,bytes,elapsed_s,
//   bandwidth_mib,sync_share,io_share,intra_share,rpcs,lock_revocations
//
// Examples:
//   parcoll_sweep --workload tileio --procs 64,128,256,512 
//                 --groups 0,8,32,64 > tileio.csv
//   parcoll_sweep --workload btio --procs 256,400,576 --groups 0,auto
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/file_area.hpp"
#include "obs/run_export.hpp"
#include "workloads/btio.hpp"
#include "workloads/flashio.hpp"
#include "workloads/ior.hpp"
#include "workloads/tileio.hpp"

namespace {

using namespace parcoll;
using workloads::Impl;
using workloads::RunResult;
using workloads::RunSpec;

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> items;
  std::stringstream stream(value);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

RunResult run_one(const std::string& workload, int nprocs,
                  const RunSpec& spec, int steps, int nvars) {
  if (workload == "tileio") {
    return workloads::run_tileio(workloads::TileIOConfig::paper(nprocs),
                                 nprocs, spec, true);
  }
  if (workload == "ior") {
    return workloads::run_ior(workloads::IorConfig{}, nprocs, spec, true);
  }
  if (workload == "btio") {
    workloads::BtIOConfig config;
    config.nsteps = steps;
    return workloads::run_btio(config, nprocs, spec, true);
  }
  if (workload == "flash") {
    auto config = workloads::FlashConfig::checkpoint();
    config.nvars = nvars;
    return workloads::run_flashio(config, nprocs, spec, true);
  }
  std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload = "tileio";
  std::vector<std::string> procs{"64", "128", "256"};
  std::vector<std::string> groups{"0", "auto"};
  int steps = 2;
  int nvars = 8;
  std::string json_path;
  bool bt_row_aggregators = true;
  int cores_per_node = 2;
  auto mapping = machine::Mapping::Block;
  auto intranode = node::IntranodeMode::Off;
  auto leader = node::LeaderPolicy::Lowest;
  bb::BbConfig bb;
  std::size_t stack_bytes = 0;
  std::string job;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      workload = next();
    } else if (arg == "--procs") {
      procs = split_list(next());
    } else if (arg == "--groups") {
      groups = split_list(next());
    } else if (arg == "--steps") {
      steps = std::stoi(next());
    } else if (arg == "--nvars") {
      nvars = std::stoi(next());
    } else if (arg == "--cores-per-node") {
      cores_per_node = std::stoi(next());
    } else if (arg == "--mapping") {
      const std::string value = next();
      if (value == "block") {
        mapping = machine::Mapping::Block;
      } else if (value == "cyclic") {
        mapping = machine::Mapping::Cyclic;
      } else {
        std::fprintf(stderr, "bad --mapping (block|cyclic): %s\n",
                     value.c_str());
        return 2;
      }
    } else if (arg == "--intranode") {
      try {
        intranode = node::parse_intranode_mode(next());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
      }
    } else if (arg == "--no-intranode") {
      intranode = node::IntranodeMode::Off;
    } else if (arg == "--leader") {
      try {
        leader = node::parse_leader_policy(next());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
      }
    } else if (arg == "--bb") {
      bb.enabled = true;
    } else if (arg == "--bb-capacity") {
      bb.enabled = true;
      bb.capacity = std::stoull(next());
    } else if (arg == "--bb-drain") {
      try {
        bb.enabled = true;
        bb.policy = bb::parse_drain_policy(next());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
      }
    } else if (arg == "--stack-bytes") {
      stack_bytes = std::stoull(next());
      if (stack_bytes < sim::Engine::kMinStackBytes) {
        std::fprintf(stderr,
                     "--stack-bytes %zu is below the %zu-byte safety floor\n",
                     stack_bytes, sim::Engine::kMinStackBytes);
        return 2;
      }
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--job") {
      job = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--workload tileio|ior|btio|flash] "
                   "[--procs 64,128,...] [--groups 0,8,auto,...] "
                   "[--steps N] [--nvars N] [--cores-per-node N] "
                   "[--mapping block|cyclic] [--intranode on|off|auto] "
                   "[--no-intranode] [--leader lowest|spread] "
                   "[--bb] [--bb-capacity BYTES] "
                   "[--bb-drain immediate|watermark|deadline|arbitrate] "
                   "[--stack-bytes N] [--job NAME] [--json FILE.json]\n",
                   argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  // Schema comment: a machine-skippable '#' line naming the schema version
  // and the units of every column, so archived sweeps stay self-describing.
  std::printf(
      "# parcoll-sweep v1: bytes=B elapsed_s=s bandwidth_mib=MiB/s "
      "sync_share|io_share|intra_share=fraction-of-rank-seconds "
      "rpcs|lock_revocations=count\n");
  std::printf("workload,impl,nprocs,groups,groups_used,mode,intranode,bytes,"
              "elapsed_s,bandwidth_mib,sync_share,io_share,intra_share,rpcs,"
              "lock_revocations\n");
  obs::JsonValue rows = obs::JsonValue::array();
  for (const std::string& proc_str : procs) {
    const int nprocs = std::stoi(proc_str);
    for (const std::string& group_str : groups) {
      RunSpec spec;
      spec.byte_true = false;
      spec.cores_per_node = cores_per_node;
      spec.mapping = mapping;
      spec.intranode = intranode;
      spec.intranode_leader = leader;
      spec.bb = bb;
      spec.stack_bytes = stack_bytes;
      spec.job = job;
      std::string impl;
      if (group_str == "0") {
        spec.impl = Impl::Ext2ph;
        impl = "ext2ph";
      } else {
        spec.impl = Impl::ParColl;
        spec.parcoll_groups =
            group_str == "auto" ? core::kAutoGroups : std::stoi(group_str);
        impl = "parcoll";
      }
      if (workload == "btio" && bt_row_aggregators) {
        spec.cb_nodes =
            static_cast<int>(std::lround(std::sqrt(nprocs)));
      }
      const RunResult result = run_one(workload, nprocs, spec, steps, nvars);
      const double total = result.sum.total();
      std::printf(
          "%s,%s,%d,%s,%d,%s,%s,%llu,%.6f,%.1f,%.4f,%.4f,%.4f,%llu,%llu\n",
          workload.c_str(), impl.c_str(), nprocs, group_str.c_str(),
          result.stats.last_num_groups,
          result.stats.view_switches ? "intermediate" : "direct",
          result.stats.intranode_calls > 0 ? "two-level" : "flat",
          static_cast<unsigned long long>(result.bytes),
          result.elapsed, result.bandwidth_mib(),
          result.sum[mpi::TimeCat::Sync] / total,
          result.sum[mpi::TimeCat::IO] / total,
          result.sum[mpi::TimeCat::Intra] / total,
          static_cast<unsigned long long>(result.fs_rpcs),
          static_cast<unsigned long long>(result.fs_lock_switches));
      std::fflush(stdout);
      if (!json_path.empty()) {
        obs::JsonValue row = obs::JsonValue::object();
        row.set("workload", workload)
            .set("impl", impl)
            .set("nprocs", nprocs)
            .set("groups", group_str)
            .set("groups_used", result.stats.last_num_groups)
            .set("result", workloads::run_result_json(result));
        rows.push(std::move(row));
      }
    }
  }
  if (!json_path.empty()) {
    obs::JsonValue config = obs::JsonValue::object();
    config.set("workload", workload);
    obs::JsonValue doc = obs::run_document("parcoll_sweep", std::move(config));
    doc.set("rows", std::move(rows));
    try {
      obs::write_json_file(json_path, doc);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s\n", error.what());
      return 1;
    }
  }
  return 0;
}
