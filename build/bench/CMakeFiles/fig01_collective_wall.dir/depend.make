# Empty dependencies file for fig01_collective_wall.
# This may be replaced when dependencies are built.
