# Empty dependencies file for parcoll_sim.
# This may be replaced when dependencies are built.
