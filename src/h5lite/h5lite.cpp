#include "h5lite/h5lite.hpp"

#include <cstring>
#include <stdexcept>

#include "mpi/collectives.hpp"
#include "mpiio/ext2ph.hpp"

namespace parcoll::h5 {

namespace {

void put_u64(std::vector<std::byte>& out, std::uint64_t value) {
  const auto* p = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), p, p + sizeof(value));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t value) {
  const auto* p = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), p, p + sizeof(value));
}

void put_string(std::vector<std::byte>& out, const std::string& value) {
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  const auto* p = reinterpret_cast<const std::byte*>(value.data());
  out.insert(out.end(), p, p + value.size());
}

struct Reader {
  const std::vector<std::byte>& bytes;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (pos + n > bytes.size()) {
      throw std::runtime_error("h5lite: truncated metadata");
    }
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t value;
    std::memcpy(&value, bytes.data() + pos, 8);
    pos += 8;
    return value;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t value;
    std::memcpy(&value, bytes.data() + pos, 4);
    pos += 4;
    return value;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string value(reinterpret_cast<const char*>(bytes.data() + pos), n);
    pos += n;
    return value;
  }
  std::vector<std::byte> blob() {
    const std::uint32_t n = u32();
    need(n);
    std::vector<std::byte> value(bytes.begin() + static_cast<long>(pos),
                                 bytes.begin() + static_cast<long>(pos + n));
    pos += n;
    return value;
  }
};

}  // namespace

std::vector<std::byte> H5File::encode(const Meta& meta) {
  std::vector<std::byte> out;
  put_u64(out, kMagic);
  put_u64(out, meta.datasets.size());
  for (const auto& [name, info] : meta.datasets) {
    put_string(out, name);
    put_u32(out, static_cast<std::uint32_t>(info.dims.size()));
    for (std::uint64_t d : info.dims) put_u64(out, d);
    put_u64(out, info.elem_size);
    put_u64(out, info.data_offset);
  }
  put_u64(out, meta.attributes.size());
  for (const auto& [key, value] : meta.attributes) {
    put_string(out, key);
    put_u32(out, static_cast<std::uint32_t>(value.size()));
    out.insert(out.end(), value.begin(), value.end());
  }
  put_u64(out, meta.next_data_offset);
  return out;
}

H5File::Meta H5File::decode(const std::vector<std::byte>& bytes) {
  Reader reader{bytes};
  if (reader.u64() != kMagic) {
    throw std::runtime_error("h5lite: bad magic (not an h5lite file)");
  }
  Meta meta;
  const std::uint64_t ndatasets = reader.u64();
  for (std::uint64_t i = 0; i < ndatasets; ++i) {
    DatasetInfo info;
    info.name = reader.str();
    const std::uint32_t ndims = reader.u32();
    for (std::uint32_t d = 0; d < ndims; ++d) {
      info.dims.push_back(reader.u64());
    }
    info.elem_size = reader.u64();
    info.data_offset = reader.u64();
    meta.datasets.emplace(info.name, std::move(info));
  }
  const std::uint64_t nattrs = reader.u64();
  for (std::uint64_t i = 0; i < nattrs; ++i) {
    const std::string key = reader.str();
    meta.attributes.emplace(key, reader.blob());
  }
  meta.next_data_offset = reader.u64();
  return meta;
}

H5File::H5File(mpi::Rank& self, const mpi::Comm& comm,
               const std::string& name, const mpiio::Hints& hints,
               bool create_new)
    : self_(&self) {
  file_ = std::make_unique<mpiio::FileHandle>(self, comm, name, hints);
  const std::string key = "h5lite:" + std::to_string(file_->fs_id());
  meta_ = self.world().shared_object<Meta>(
      key, [] { return std::make_shared<Meta>(); });
  open_ = true;
  if (create_new) {
    *meta_ = Meta{};
    flush_metadata();
  } else {
    load_metadata();
  }
}

H5File H5File::create(mpi::Rank& self, const mpi::Comm& comm,
                      const std::string& name, const mpiio::Hints& hints) {
  return H5File(self, comm, name, hints, true);
}

H5File H5File::open(mpi::Rank& self, const mpi::Comm& comm,
                    const std::string& name, const mpiio::Hints& hints) {
  return H5File(self, comm, name, hints, false);
}

void H5File::flush_metadata() {
  // HDF5 metadata writes serialize at one process.
  if (file_->comm().local_rank(self_->rank()) == 0) {
    const std::vector<std::byte> encoded = encode(*meta_);
    if (encoded.size() > kMetadataBytes) {
      throw std::runtime_error("h5lite: metadata region overflow");
    }
    const fs::Extent extent{0, encoded.size()};
    mpiio::DirectTarget target(self_->world().fs(), file_->fs_id());
    target.write(*self_, std::span(&extent, 1),
                 self_->world().byte_true() ? encoded.data() : nullptr);
    mpiio::FileStats delta;
    delta.bytes_written = encoded.size();
    delta.independent_writes = 1;
    file_->add_stats(delta);
  }
  mpi::barrier(*self_, file_->comm());
}

void H5File::load_metadata() {
  if (self_->world().byte_true()) {
    if (file_->comm().local_rank(self_->rank()) == 0) {
      std::vector<std::byte> region(kMetadataBytes);
      const fs::Extent extent{0, kMetadataBytes};
      mpiio::DirectTarget target(self_->world().fs(), file_->fs_id());
      target.read(*self_, std::span(&extent, 1), region.data());
      *meta_ = decode(region);
    }
    mpi::barrier(*self_, file_->comm());
  } else if (meta_->datasets.empty() && meta_->next_data_offset == kMetadataBytes) {
    // Phantom mode keeps the metadata in the shared object only; opening a
    // file never created in this world has nothing to parse.
    mpi::barrier(*self_, file_->comm());
  } else {
    mpi::barrier(*self_, file_->comm());
  }
}

const DatasetInfo& H5File::create_dataset(const std::string& name,
                                          std::vector<std::uint64_t> dims,
                                          std::uint64_t elem_size) {
  if (!open_) throw std::logic_error("h5lite: file is closed");
  if (dims.empty() || elem_size == 0) {
    throw std::invalid_argument("h5lite: dataset needs dims and an element size");
  }
  auto it = meta_->datasets.find(name);
  if (it == meta_->datasets.end()) {
    // First arriver allocates; everyone else validates below.
    DatasetInfo info;
    info.name = name;
    info.dims = std::move(dims);
    info.elem_size = elem_size;
    info.data_offset = meta_->next_data_offset;
    meta_->next_data_offset += info.bytes();
    it = meta_->datasets.emplace(name, std::move(info)).first;
  } else {
    if (it->second.dims != dims || it->second.elem_size != elem_size) {
      throw std::invalid_argument(
          "h5lite: create_dataset called with mismatched shapes");
    }
  }
  flush_metadata();
  return it->second;
}

bool H5File::has_dataset(const std::string& name) const {
  return meta_->datasets.count(name) > 0;
}

const DatasetInfo& H5File::dataset(const std::string& name) const {
  auto it = meta_->datasets.find(name);
  if (it == meta_->datasets.end()) {
    throw std::invalid_argument("h5lite: no such dataset: " + name);
  }
  return it->second;
}

std::vector<std::string> H5File::dataset_names() const {
  std::vector<std::string> names;
  names.reserve(meta_->datasets.size());
  for (const auto& [name, info] : meta_->datasets) {
    names.push_back(name);
  }
  return names;
}

void H5File::apply_selection(const DatasetInfo& info,
                             const dtype::Datatype& selection) {
  if (!selection.segments().empty() &&
      selection.segments().back().end() >
          static_cast<std::int64_t>(info.bytes())) {
    throw std::invalid_argument("h5lite: selection escapes dataset " +
                                info.name + " (" + selection.describe() +
                                ")");
  }
  if (selection.size() == 0) {
    // An empty selection: the rank still participates in the collective,
    // contributing nothing. Use a trivial view.
    file_->set_view(info.data_offset, info.elem_size,
                    dtype::Datatype::bytes(info.elem_size));
  } else {
    file_->set_view(info.data_offset, info.elem_size, selection);
  }
}

void H5File::write_dataset(const std::string& name,
                           const dtype::Datatype& selection,
                           const void* buffer, std::uint64_t count,
                           const dtype::Datatype& memtype) {
  const DatasetInfo& info = dataset(name);
  apply_selection(info, selection);
  if (selection.size() == 0) {
    core::write_at_all(*file_, 0, nullptr, 0, dtype::Datatype::bytes(1));
  } else {
    core::write_at_all(*file_, 0, buffer, count, memtype);
  }
}

void H5File::read_dataset(const std::string& name,
                          const dtype::Datatype& selection, void* buffer,
                          std::uint64_t count, const dtype::Datatype& memtype) {
  const DatasetInfo& info = dataset(name);
  apply_selection(info, selection);
  if (selection.size() == 0) {
    core::read_at_all(*file_, 0, nullptr, 0, dtype::Datatype::bytes(1));
  } else {
    core::read_at_all(*file_, 0, buffer, count, memtype);
  }
}

void H5File::write_attribute(const std::string& key,
                             const std::vector<std::byte>& value) {
  if (!open_) throw std::logic_error("h5lite: file is closed");
  meta_->attributes[key] = value;
  flush_metadata();
}

std::vector<std::byte> H5File::attribute(const std::string& key) const {
  auto it = meta_->attributes.find(key);
  if (it == meta_->attributes.end()) {
    throw std::invalid_argument("h5lite: no such attribute: " + key);
  }
  return it->second;
}

bool H5File::has_attribute(const std::string& key) const {
  return meta_->attributes.count(key) > 0;
}

void H5File::close() {
  if (!open_) throw std::logic_error("h5lite: already closed");
  flush_metadata();
  open_ = false;
  file_->close();
}

}  // namespace parcoll::h5
