#include "core/aggregator_dist.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace parcoll::core {

std::vector<int> aggregator_node_list(const machine::Topology& topology,
                                      const mpi::Comm& comm,
                                      const std::vector<int>& explicit_nodes,
                                      int cb_nodes) {
  std::vector<int> nodes;
  if (!explicit_nodes.empty()) {
    nodes = explicit_nodes;
  } else {
    std::vector<bool> seen(static_cast<std::size_t>(topology.num_nodes()), false);
    for (int local = 0; local < comm.size(); ++local) {
      const int node = topology.node_of(comm.world_rank(local));
      if (!seen[static_cast<std::size_t>(node)]) {
        seen[static_cast<std::size_t>(node)] = true;
        nodes.push_back(node);
      }
    }
    std::sort(nodes.begin(), nodes.end());
  }
  if (cb_nodes > 0 && static_cast<std::size_t>(cb_nodes) < nodes.size()) {
    nodes.resize(static_cast<std::size_t>(cb_nodes));
  }
  return nodes;
}

std::vector<std::vector<int>> distribute_aggregators(
    const machine::Topology& topology, const mpi::Comm& comm,
    const std::vector<int>& aggregator_nodes,
    const std::vector<int>& group_of_rank, int num_groups) {
  if (static_cast<int>(group_of_rank.size()) != comm.size()) {
    throw std::invalid_argument(
        "distribute_aggregators: group map size != comm size");
  }
  // Lowest comm-local rank per (node, group).
  std::unordered_map<std::int64_t, int> lowest_member;
  const auto key = [](int node, int group) {
    return static_cast<std::int64_t>(node) * 1000000 + group;
  };
  for (int local = 0; local < comm.size(); ++local) {
    const int node = topology.node_of(comm.world_rank(local));
    const int group = group_of_rank[static_cast<std::size_t>(local)];
    auto [it, inserted] = lowest_member.emplace(key(node, group), local);
    if (!inserted) {
      it->second = std::min(it->second, local);
    }
  }

  std::vector<std::vector<int>> result(static_cast<std::size_t>(num_groups));
  std::vector<bool> node_taken(static_cast<std::size_t>(topology.num_nodes()),
                               false);
  std::vector<bool> exhausted(static_cast<std::size_t>(num_groups), false);

  // Round-robin over subgroups until no subgroup can take another node.
  int remaining = num_groups;
  while (remaining > 0) {
    bool progressed = false;
    for (int g = 0; g < num_groups; ++g) {
      if (exhausted[static_cast<std::size_t>(g)]) continue;
      bool assigned = false;
      for (int node : aggregator_nodes) {
        if (node < 0 || node >= topology.num_nodes()) {
          throw std::out_of_range("distribute_aggregators: bad node id");
        }
        if (node_taken[static_cast<std::size_t>(node)]) continue;
        auto it = lowest_member.find(key(node, g));
        if (it == lowest_member.end()) continue;  // no member of g there
        node_taken[static_cast<std::size_t>(node)] = true;
        result[static_cast<std::size_t>(g)].push_back(it->second);
        assigned = true;
        progressed = true;
        break;
      }
      if (!assigned) {
        exhausted[static_cast<std::size_t>(g)] = true;
        --remaining;
      }
    }
    if (!progressed && remaining > 0) {
      // Every non-exhausted group failed this round; nothing more to give.
      break;
    }
  }

  // Requirement (a): promote the lowest-ranked member of any group the
  // node list could not serve.
  std::vector<int> lowest_in_group(static_cast<std::size_t>(num_groups), -1);
  for (int local = 0; local < comm.size(); ++local) {
    auto& low = lowest_in_group[static_cast<std::size_t>(
        group_of_rank[static_cast<std::size_t>(local)])];
    if (low < 0) low = local;
  }
  for (int g = 0; g < num_groups; ++g) {
    auto& aggregators = result[static_cast<std::size_t>(g)];
    if (aggregators.empty() && lowest_in_group[static_cast<std::size_t>(g)] >= 0) {
      aggregators.push_back(lowest_in_group[static_cast<std::size_t>(g)]);
    }
    std::sort(aggregators.begin(), aggregators.end());
  }
  return result;
}

}  // namespace parcoll::core
