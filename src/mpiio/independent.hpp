// Non-collective I/O strategies.
//
// FileHandle::write_at/read_at already provide batched independent I/O:
// all of a request's extents are issued as one pipelined operation. This
// header adds the strictly POSIX-style variant — one blocking call per
// contiguous extent, which is what an application gets from liblustre
// without any MPI-IO optimization. The paper's "Cray w/o Coll" series
// (Fig. 11, ~60 MB/s for Flash I/O) is this code path.
#pragma once

#include <cstdint>

#include "dtype/datatype.hpp"
#include "mpiio/file.hpp"

namespace parcoll::mpiio {

/// Write through the view, issuing each contiguous file extent as its own
/// blocking call (no pipelining across extents).
void posix_write_at(FileHandle& file, std::uint64_t offset, const void* buffer,
                    std::uint64_t count, const dtype::Datatype& memtype);

/// Read counterpart of posix_write_at.
void posix_read_at(FileHandle& file, std::uint64_t offset, void* buffer,
                   std::uint64_t count, const dtype::Datatype& memtype);

}  // namespace parcoll::mpiio
