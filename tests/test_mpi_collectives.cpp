// Collectives: data semantics, wait-for-all timing, sync accounting,
// cost-model shape, and comm_split.
#include <gtest/gtest.h>

#include <numeric>

#include "mpi/collectives.hpp"
#include "mpi/runtime.hpp"

namespace parcoll::mpi {
namespace {

World make_world(int nranks) {
  return World(machine::MachineModel::jaguar(nranks));
}

TEST(Collectives, BarrierSynchronizesArrivals) {
  World world = make_world(4);
  std::vector<double> release(4, 0);
  world.run([&](Rank& self) {
    self.busy(TimeCat::Compute, 0.1 * self.rank());  // staggered arrivals
    barrier(self, self.comm_world());
    release[self.rank()] = self.now();
  });
  // Everyone leaves at the same instant, no earlier than the last arrival.
  for (int r = 1; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(release[r], release[0]);
  }
  EXPECT_GE(release[0], 0.3);
}

TEST(Collectives, StragglerWaitIsChargedToSync) {
  World world = make_world(4);
  world.run([&](Rank& self) {
    if (self.rank() == 3) self.busy(TimeCat::Compute, 2.0);
    barrier(self, self.comm_world());
  });
  // Rank 0 waited ~2s for rank 3; rank 3 waited ~0.
  EXPECT_NEAR(world.rank_times()[0][TimeCat::Sync], 2.0, 0.01);
  EXPECT_LT(world.rank_times()[3][TimeCat::Sync], 0.01);
}

TEST(Collectives, AllgatherDeliversEveryValue) {
  World world = make_world(5);
  std::vector<std::vector<int>> results(5);
  world.run([&](Rank& self) {
    results[self.rank()] = allgather(self, self.comm_world(), self.rank() * 10);
  });
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(results[r], (std::vector<int>{0, 10, 20, 30, 40}));
  }
}

TEST(Collectives, AllgathervVariableLengths) {
  World world = make_world(3);
  std::vector<std::vector<std::vector<int>>> results(3);
  world.run([&](Rank& self) {
    std::vector<int> mine(static_cast<std::size_t>(self.rank()), self.rank());
    results[self.rank()] = allgatherv(self, self.comm_world(), mine);
  });
  for (int r = 0; r < 3; ++r) {
    ASSERT_EQ(results[r].size(), 3u);
    EXPECT_TRUE(results[r][0].empty());
    EXPECT_EQ(results[r][1], (std::vector<int>{1}));
    EXPECT_EQ(results[r][2], (std::vector<int>{2, 2}));
  }
}

TEST(Collectives, BcastFromNonzeroRoot) {
  World world = make_world(4);
  std::vector<int> results(4, -1);
  world.run([&](Rank& self) {
    const int value = self.rank() == 2 ? 777 : 0;
    results[self.rank()] = bcast(self, self.comm_world(), 2, value);
  });
  EXPECT_EQ(results, (std::vector<int>{777, 777, 777, 777}));
}

TEST(Collectives, GathervOnlyRootReceives) {
  World world = make_world(3);
  std::vector<std::size_t> sizes(3, 99);
  world.run([&](Rank& self) {
    std::vector<int> mine{self.rank()};
    const auto gathered = gatherv(self, self.comm_world(), 1, mine);
    sizes[self.rank()] = gathered.size();
  });
  EXPECT_EQ(sizes, (std::vector<std::size_t>{0, 3, 0}));
}

TEST(Collectives, AlltoallPersonalizedExchange) {
  World world = make_world(3);
  std::vector<std::vector<int>> results(3);
  world.run([&](Rank& self) {
    std::vector<int> send(3);
    for (int peer = 0; peer < 3; ++peer) {
      send[peer] = self.rank() * 100 + peer;  // value destined for `peer`
    }
    results[self.rank()] = alltoall(self, self.comm_world(), send);
  });
  // results[r][j] = what j sent to r = j*100 + r.
  for (int r = 0; r < 3; ++r) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(results[r][j], j * 100 + r);
    }
  }
}

TEST(Collectives, AllreduceSumMaxMin) {
  World world = make_world(6);
  std::vector<std::array<long, 3>> results(6);
  world.run([&](Rank& self) {
    const long value = self.rank() + 1;
    results[self.rank()] = {allreduce_sum(self, self.comm_world(), value),
                            allreduce_max(self, self.comm_world(), value),
                            allreduce_min(self, self.comm_world(), value)};
  });
  for (const auto& [sum, max, min] : results) {
    EXPECT_EQ(sum, 21);
    EXPECT_EQ(max, 6);
    EXPECT_EQ(min, 1);
  }
}

TEST(Collectives, ExscanSumPrefixes) {
  World world = make_world(5);
  std::vector<std::uint64_t> results(5);
  world.run([&](Rank& self) {
    results[self.rank()] =
        exscan_sum(self, self.comm_world(), std::uint64_t{10});
  });
  EXPECT_EQ(results, (std::vector<std::uint64_t>{0, 10, 20, 30, 40}));
}

TEST(Collectives, BackToBackCollectivesKeepSequence) {
  World world = make_world(4);
  world.run([&](Rank& self) {
    for (int round = 0; round < 10; ++round) {
      const auto values =
          allgather(self, self.comm_world(), self.rank() + round);
      for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(values[r], r + round);
      }
    }
  });
}

TEST(Collectives, SingletonCommIsFree) {
  World world = make_world(1);
  world.run([&](Rank& self) {
    const double t0 = self.now();
    barrier(self, self.comm_world());
    const auto all = allgather(self, self.comm_world(), 42);
    EXPECT_EQ(all, (std::vector<int>{42}));
    EXPECT_DOUBLE_EQ(self.now(), t0);
  });
}

TEST(CollectiveCost, AlltoallGrowsLinearlyBarrierLogarithmically) {
  const machine::NetworkParams net;
  const double barrier_64 = coll_cost(net, CollKind::Barrier, 64, 0, 0);
  const double barrier_1024 = coll_cost(net, CollKind::Barrier, 1024, 0, 0);
  EXPECT_NEAR(barrier_1024 / barrier_64, 10.0 / 6.0, 1e-9);  // log ratio

  const double a2a_64 = coll_cost(net, CollKind::Alltoall, 64, 256, 256 * 64);
  const double a2a_1024 =
      coll_cost(net, CollKind::Alltoall, 1024, 4096, 4096 * 1024);
  EXPECT_GT(a2a_1024 / a2a_64, 10.0);  // super-logarithmic growth
}

TEST(CollectiveCost, SingleRankIsFree) {
  const machine::NetworkParams net;
  for (CollKind kind : {CollKind::Barrier, CollKind::Bcast, CollKind::Gather,
                        CollKind::Allgather, CollKind::Alltoall,
                        CollKind::Allreduce, CollKind::Scan}) {
    EXPECT_DOUBLE_EQ(coll_cost(net, kind, 1, 1000, 1000), 0.0);
  }
}

TEST(CommSplit, SplitsByColorOrderedByKey) {
  World world = make_world(6);
  std::vector<int> sub_rank(6, -1);
  std::vector<int> sub_size(6, -1);
  world.run([&](Rank& self) {
    const int color = self.rank() % 2;
    // Reverse key order within each color.
    const Comm sub =
        comm_split(self, self.comm_world(), color, -self.rank());
    sub_rank[self.rank()] = sub.local_rank(self.rank());
    sub_size[self.rank()] = sub.size();
  });
  // Evens {0,2,4} with keys {0,-2,-4}: order 4,2,0.
  EXPECT_EQ(sub_size, (std::vector<int>{3, 3, 3, 3, 3, 3}));
  EXPECT_EQ(sub_rank[4], 0);
  EXPECT_EQ(sub_rank[2], 1);
  EXPECT_EQ(sub_rank[0], 2);
}

TEST(CommSplit, SubcommunicatorsIsolateCollectives) {
  World world = make_world(8);
  std::vector<int> sums(8, 0);
  world.run([&](Rank& self) {
    const int color = self.rank() / 4;  // two groups of 4
    const Comm sub = comm_split(self, self.comm_world(), color, self.rank());
    sums[self.rank()] = allreduce_sum(self, sub, self.rank());
  });
  // Group 0: 0+1+2+3 = 6; group 1: 4+5+6+7 = 22.
  for (int r = 0; r < 4; ++r) EXPECT_EQ(sums[r], 6);
  for (int r = 4; r < 8; ++r) EXPECT_EQ(sums[r], 22);
}

TEST(CommSplit, NestedSplitWorks) {
  World world = make_world(8);
  std::vector<int> sizes(8, 0);
  world.run([&](Rank& self) {
    const Comm half =
        comm_split(self, self.comm_world(), self.rank() / 4, self.rank());
    const Comm quarter =
        comm_split(self, half, self.rank() % 2, self.rank());
    sizes[self.rank()] = quarter.size();
  });
  EXPECT_EQ(sizes, std::vector<int>(8, 2));
}

TEST(Collectives, SmallerGroupsSynchronizeCheaper) {
  // The heart of ParColl: P/G-rank collectives cost less than P-rank ones.
  const auto sync_of = [](int nranks, int groups) {
    World world(machine::MachineModel::jaguar(nranks));
    world.run([&](Rank& self) {
      const int color = self.rank() / (nranks / groups);
      const Comm sub = comm_split(self, self.comm_world(), color, self.rank());
      for (int round = 0; round < 20; ++round) {
        std::vector<std::uint32_t> sizes(
            static_cast<std::size_t>(sub.size()), 1);
        alltoall(self, sub, sizes);
      }
    });
    double total = 0;
    for (const auto& breakdown : world.rank_times()) {
      total += breakdown[TimeCat::Sync];
    }
    return total;
  };
  EXPECT_LT(sync_of(64, 8), sync_of(64, 1) / 2.0);
}

}  // namespace
}  // namespace parcoll::mpi
