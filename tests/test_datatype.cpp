// Derived datatypes: constructors, flattening, extent/size semantics.
#include <gtest/gtest.h>

#include "dtype/datatype.hpp"

namespace parcoll::dtype {
namespace {

TEST(Datatype, BytesBasics) {
  const Datatype type = Datatype::bytes(16);
  EXPECT_EQ(type.size(), 16u);
  EXPECT_EQ(type.extent(), 16);
  ASSERT_EQ(type.segments().size(), 1u);
  EXPECT_EQ(type.segments()[0], (Segment{0, 16}));
}

TEST(Datatype, EmptyType) {
  const Datatype type;
  EXPECT_EQ(type.size(), 0u);
  EXPECT_EQ(type.extent(), 0);
  EXPECT_TRUE(type.segments().empty());
}

TEST(Datatype, ContiguousCoalescesIntoOneSegment) {
  const Datatype type = Datatype::contiguous(4, Datatype::bytes(8));
  EXPECT_EQ(type.size(), 32u);
  EXPECT_EQ(type.extent(), 32);
  ASSERT_EQ(type.segments().size(), 1u);
  EXPECT_EQ(type.segments()[0], (Segment{0, 32}));
}

TEST(Datatype, VectorWithGaps) {
  // 3 blocks of 2 elements (4B each), stride 5 elements.
  const Datatype type = Datatype::vec(3, 2, 5, Datatype::bytes(4));
  EXPECT_EQ(type.size(), 24u);
  ASSERT_EQ(type.segments().size(), 3u);
  EXPECT_EQ(type.segments()[0], (Segment{0, 8}));
  EXPECT_EQ(type.segments()[1], (Segment{20, 8}));
  EXPECT_EQ(type.segments()[2], (Segment{40, 8}));
  EXPECT_EQ(type.extent(), 48);  // last block ends at 40 + 8
}

TEST(Datatype, HvectorByteStride) {
  const Datatype type = Datatype::hvector(2, 1, 100, Datatype::bytes(10));
  ASSERT_EQ(type.segments().size(), 2u);
  EXPECT_EQ(type.segments()[1], (Segment{100, 10}));
  EXPECT_EQ(type.extent(), 110);
}

TEST(Datatype, VectorNegativeStride) {
  const Datatype type = Datatype::vec(2, 1, -3, Datatype::bytes(4));
  ASSERT_EQ(type.segments().size(), 2u);
  EXPECT_EQ(type.segments()[0], (Segment{0, 4}));
  EXPECT_EQ(type.segments()[1], (Segment{-12, 4}));
  EXPECT_EQ(type.lb(), -12);
  EXPECT_EQ(type.extent(), 16);
  EXPECT_FALSE(type.monotone());
}

TEST(Datatype, IndexedElementDisplacements) {
  const IndexedBlock blocks[] = {{0, 2}, {5, 1}, {9, 3}};
  const Datatype type = Datatype::indexed(blocks, Datatype::bytes(4));
  EXPECT_EQ(type.size(), 24u);
  ASSERT_EQ(type.segments().size(), 3u);
  EXPECT_EQ(type.segments()[1], (Segment{20, 4}));
  EXPECT_EQ(type.segments()[2], (Segment{36, 12}));
  EXPECT_TRUE(type.monotone());
}

TEST(Datatype, HindexedByteDisplacements) {
  const IndexedBlock blocks[] = {{100, 1}, {0, 1}};
  const Datatype type = Datatype::hindexed(blocks, Datatype::bytes(8));
  ASSERT_EQ(type.segments().size(), 2u);
  EXPECT_EQ(type.segments()[0], (Segment{100, 8}));
  EXPECT_EQ(type.segments()[1], (Segment{0, 8}));
  EXPECT_FALSE(type.monotone());  // type-map order preserved
  EXPECT_EQ(type.lb(), 0);
  EXPECT_EQ(type.ub(), 108);
}

TEST(Datatype, StructCombinesHeterogeneousFields) {
  const Datatype a = Datatype::bytes(4);
  const Datatype b = Datatype::vec(2, 1, 2, Datatype::bytes(4));
  const StructField fields[] = {{0, 1, &a}, {16, 2, &b}};
  const Datatype type = Datatype::structured(fields);
  EXPECT_EQ(type.size(), 4u + 2 * 8u);
  EXPECT_EQ(type.segments().front(), (Segment{0, 4}));
}

TEST(Datatype, Subarray2DRowMajor) {
  // 4x6 global, 2x3 sub at (1, 2), 1-byte elements.
  const std::int64_t sizes[] = {4, 6};
  const std::int64_t subsizes[] = {2, 3};
  const std::int64_t starts[] = {1, 2};
  const Datatype type =
      Datatype::subarray(sizes, subsizes, starts, Datatype::bytes(1));
  EXPECT_EQ(type.size(), 6u);
  EXPECT_EQ(type.extent(), 24);  // full global array
  ASSERT_EQ(type.segments().size(), 2u);
  EXPECT_EQ(type.segments()[0], (Segment{8, 3}));   // row 1, cols 2..4
  EXPECT_EQ(type.segments()[1], (Segment{14, 3}));  // row 2, cols 2..4
  EXPECT_TRUE(type.monotone());
}

TEST(Datatype, Subarray3D) {
  const std::int64_t sizes[] = {2, 3, 4};
  const std::int64_t subsizes[] = {2, 2, 2};
  const std::int64_t starts[] = {0, 1, 1};
  const Datatype type =
      Datatype::subarray(sizes, subsizes, starts, Datatype::bytes(2));
  EXPECT_EQ(type.size(), 16u);
  EXPECT_EQ(type.extent(), 48);
  EXPECT_EQ(type.segments().size(), 4u);  // 2 planes x 2 rows
  EXPECT_EQ(type.segments()[0], (Segment{2 * (1 * 4 + 1), 4}));
}

TEST(Datatype, SubarrayFortranOrderMatchesReversedC) {
  const std::int64_t sizes[] = {6, 4};
  const std::int64_t subsizes[] = {3, 2};
  const std::int64_t starts[] = {2, 1};
  const Datatype fortran = Datatype::subarray(
      sizes, subsizes, starts, Datatype::bytes(1), Datatype::Order::Fortran);
  const std::int64_t rsizes[] = {4, 6};
  const std::int64_t rsubsizes[] = {2, 3};
  const std::int64_t rstarts[] = {1, 2};
  const Datatype c =
      Datatype::subarray(rsizes, rsubsizes, rstarts, Datatype::bytes(1));
  EXPECT_EQ(fortran.segments(), c.segments());
}

TEST(Datatype, SubarrayFullArrayIsContiguous) {
  const std::int64_t sizes[] = {3, 5};
  const std::int64_t starts[] = {0, 0};
  const Datatype type =
      Datatype::subarray(sizes, sizes, starts, Datatype::bytes(4));
  ASSERT_EQ(type.segments().size(), 1u);
  EXPECT_EQ(type.segments()[0], (Segment{0, 60}));
}

TEST(Datatype, SubarrayEmptySubsizes) {
  const std::int64_t sizes[] = {3, 5};
  const std::int64_t subsizes[] = {0, 5};
  const std::int64_t starts[] = {0, 0};
  const Datatype type =
      Datatype::subarray(sizes, subsizes, starts, Datatype::bytes(4));
  EXPECT_EQ(type.size(), 0u);
  EXPECT_EQ(type.extent(), 60);
}

TEST(Datatype, SubarrayValidation) {
  const std::int64_t sizes[] = {4};
  const std::int64_t subsizes[] = {3};
  const std::int64_t bad_starts[] = {2};  // 2 + 3 > 4
  EXPECT_THROW(Datatype::subarray(sizes, subsizes, bad_starts,
                                  Datatype::bytes(1)),
               std::invalid_argument);
  const std::int64_t starts[] = {0};
  const std::int64_t mismatched[] = {1, 1};
  EXPECT_THROW(
      Datatype::subarray(sizes, std::span<const std::int64_t>(mismatched),
                         starts, Datatype::bytes(1)),
      std::invalid_argument);
}

TEST(Datatype, ResizedChangesExtentOnly) {
  const Datatype base = Datatype::bytes(8);
  const Datatype type = Datatype::resized(base, 0, 32);
  EXPECT_EQ(type.size(), 8u);
  EXPECT_EQ(type.extent(), 32);
  EXPECT_EQ(type.segments(), base.segments());
}

TEST(Datatype, TiledSegmentsRepeatAtExtent) {
  const Datatype type = Datatype::resized(Datatype::bytes(4), 0, 10);
  const auto tiled = type.tiled_segments(3);
  ASSERT_EQ(tiled.size(), 3u);
  EXPECT_EQ(tiled[1], (Segment{10, 4}));
  EXPECT_EQ(tiled[2], (Segment{20, 4}));
}

TEST(Datatype, TiledSegmentsCoalesceWhenDense) {
  const Datatype type = Datatype::bytes(4);
  const auto tiled = type.tiled_segments(5);
  ASSERT_EQ(tiled.size(), 1u);
  EXPECT_EQ(tiled[0], (Segment{0, 20}));
}

TEST(Datatype, FromSegmentsDirectConstruction) {
  std::vector<Segment> segs{{0, 4}, {4, 4}, {100, 2}};
  const Datatype type = Datatype::from_segments(std::move(segs), 0, 200);
  EXPECT_EQ(type.size(), 10u);
  EXPECT_EQ(type.extent(), 200);
  ASSERT_EQ(type.segments().size(), 2u);  // first two coalesce
}

TEST(Datatype, NestedCompositionVectorOfSubarrays) {
  const std::int64_t sizes[] = {2, 2};
  const std::int64_t subsizes[] = {1, 2};
  const std::int64_t starts[] = {0, 0};
  const Datatype row =
      Datatype::subarray(sizes, subsizes, starts, Datatype::bytes(1));
  const Datatype type = Datatype::contiguous(2, row);
  EXPECT_EQ(type.size(), 4u);
  ASSERT_EQ(type.segments().size(), 2u);
  EXPECT_EQ(type.segments()[0], (Segment{0, 2}));
  EXPECT_EQ(type.segments()[1], (Segment{4, 2}));
}

}  // namespace
}  // namespace parcoll::dtype
