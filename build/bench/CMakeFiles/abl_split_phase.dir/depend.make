# Empty dependencies file for abl_split_phase.
# This may be replaced when dependencies are built.
