// MPI_Info-style hints controlling collective buffering, striping, and the
// ParColl extensions.
//
// The ROMIO-compatible keys (cb_buffer_size, cb_nodes, striping_factor,
// striping_unit) keep their usual meaning. Following paper §4.2, an
// application may pass either the number of aggregators to take from the
// default node list (cb_nodes) or an explicit list of physical nodes
// (cb_node_list). ParColl adds its own keys without altering the semantics
// of the existing ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bb/options.hpp"
#include "fs/integrity.hpp"
#include "node/options.hpp"

namespace parcoll::mpiio {

struct Hints {
  /// Collective buffer per aggregator per cycle (ROMIO default 4 MB).
  std::uint64_t cb_buffer_size = 4ull << 20;
  /// Number of aggregator nodes, taken from the head of the default node
  /// list; 0 = all nodes (the Cray XT default behaviour in the paper).
  int cb_nodes = 0;
  /// Explicit aggregator node list; overrides cb_nodes when non-empty.
  std::vector<int> cb_node_list;

  /// Lustre striping applied at create time.
  int striping_factor = 64;
  std::uint64_t striping_unit = 4ull << 20;

  /// romio_cb_write / romio_cb_read: when false, the corresponding
  /// collective calls are serviced locally with data sieving (no
  /// coordination), as ROMIO degrades them.
  bool cb_write_enabled = true;
  bool cb_read_enabled = true;
  /// romio_no_indep_rw: the application promises no independent I/O, so
  /// non-aggregator processes defer the (metadata-costly) file open.
  bool no_indep_rw = false;
  /// Align file-domain boundaries to the file's stripe size (the
  /// Lustre-aware ADIO optimization). Off by default, as in classic ROMIO.
  bool cb_fd_align = false;

  /// Two-level collective I/O: aggregate requests within each physical
  /// node (over memory) before the inter-node exchange, so only one
  /// process per node joins the coordination collectives and the data
  /// redistribution. Off by default — the historical single-level
  /// protocol, bit-identical output and timing.
  node::IntranodeMode cb_intranode = node::IntranodeMode::Off;
  /// Which process of a node leads its intra-node aggregation.
  node::LeaderPolicy cb_intranode_leader = node::LeaderPolicy::Lowest;

  // --- ParColl extensions (this paper) ---
  /// Number of subgroups (ParColl-N in the paper's figures). 0 disables
  /// partitioning (plain ext2ph); -1 ("auto") lets the planner pick from
  /// the access pattern: as many clean-split groups as the least group
  /// size permits, or ~sqrt(P) groups under the intermediate view.
  int parcoll_num_groups = 0;
  /// Lower bound on subgroup size; the paper runs with "a least group size
  /// of 8". Requested group counts are clamped to respect it.
  int parcoll_min_group_size = 8;
  /// Permit the intermediate-file-view switch for scattered patterns
  /// (paper Fig. 4c). When false, patterns whose file areas intersect fall
  /// back to fewer (possibly one) subgroups.
  bool parcoll_view_switch = true;
  /// Reuse the subgroup partition across collective calls on the same file
  /// view (the paper ties pattern detection to view initiation). With it,
  /// only the first call pays a global exchange; later calls synchronize
  /// within subgroups only, letting groups drift past slow storage epochs.
  /// Disable when successive calls change the rank-to-offset ordering.
  bool parcoll_persistent_groups = true;

  // --- Burst-buffer staging tier (node-local write-behind) ---
  /// Off by default: writes go straight to the filesystem, bit-identical
  /// to the historical path. With `bb=enable`, collective writes land in a
  /// capacity-limited per-node staging store and return; a background
  /// drain writes them to Lustre under `bb_drain` policy. Keys:
  /// `bb` (enable/disable), `bb_capacity` (bytes per node),
  /// `bb_drain` (immediate|watermark|deadline|arbitrate),
  /// `bb_hi_watermark` / `bb_lo_watermark` (capacity fractions),
  /// `bb_deadline` (seconds before a staged segment must start draining).
  bb::BbConfig bb;

  // --- End-to-end data integrity (checksum pipeline) ---
  /// Off by default: no checksums, bit-identical to the historical path.
  /// Keys: `integrity` (off|detect|repair) — detect verifies user data at
  /// every relay hop and reports unrecoverable corruption as a collective
  /// error; repair additionally heals mismatches from the retained source
  /// replica. `integrity_block` (checksum block bytes), `scrub`
  /// (enable/disable the background scrubber after media events).
  fs::IntegrityConfig integrity;

  /// MPI_Info-style string interface. Unknown keys throw; values that can
  /// never be valid (zero cb_buffer_size, non-positive group counts other
  /// than "auto") throw std::invalid_argument at set time.
  void set(const std::string& key, const std::string& value);
  [[nodiscard]] std::string get(const std::string& key) const;

  /// Whole-struct validation against the opening communicator's size.
  /// Called at file-open time; throws std::invalid_argument with the
  /// offending key and value on the first violation.
  void validate(int comm_size) const;
};

}  // namespace parcoll::mpiio
