// NAS BT-IO (full mode): diagonal multi-partitioned 3-D output (paper §5.3).
//
// The BT solution array holds 5 doubles per point of an N^3 grid. With P a
// perfect square, sqrt(P) x sqrt(P) processors each own sqrt(P) cells that
// shift diagonally through the cube — so every process's file segments
// spread across the whole array. This is the paper's pattern (c): no direct
// FA split exists and ParColl must switch to the intermediate file view.
// Full-mode BT-IO appends one solution dump per time step using collective
// MPI-IO writes.
#pragma once

#include <cstdint>

#include "dtype/datatype.hpp"
#include "workloads/runner.hpp"

namespace parcoll::workloads {

struct BtIOConfig {
  int grid = 162;  // class C grid; class A = 64, class B = 102
  int nsteps = 5;  // class runs do 40; benches scale this down
  std::uint64_t elem_bytes = 40;  // 5 doubles per grid point

  [[nodiscard]] std::uint64_t step_bytes() const {
    const auto n = static_cast<std::uint64_t>(grid);
    return n * n * n * elem_bytes;
  }
  /// Segments owned by `rank` (byte displacements within one step's dump).
  [[nodiscard]] dtype::Datatype filetype(int rank, int nranks) const;
  [[nodiscard]] std::uint64_t rank_bytes(int rank, int nranks) const;
};

RunResult run_btio(const BtIOConfig& config, int nranks, const RunSpec& spec,
                   bool write);

/// BT-IO "epio" mode: each process appends its cells contiguously to its
/// own private file. No shared-file coordination at all — the classic
/// upper-bound comparison for collective shared-file output (the solution
/// must be reassembled offline, which is why full mode exists).
RunResult run_btio_epio(const BtIOConfig& config, int nranks,
                        const RunSpec& spec);

}  // namespace parcoll::workloads
