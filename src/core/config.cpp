#include "core/config.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

namespace parcoll::core {

ParcollSettings ParcollSettings::from(const mpiio::Hints& hints) {
  if (hints.parcoll_num_groups < -1) {
    throw std::invalid_argument(
        "ParcollSettings: parcoll_num_groups must be a positive count, "
        "0 (disabled), or -1 (auto); got " +
        std::to_string(hints.parcoll_num_groups));
  }
  if (hints.parcoll_min_group_size < 1) {
    throw std::invalid_argument(
        "ParcollSettings: parcoll_min_group_size must be >= 1; got " +
        std::to_string(hints.parcoll_min_group_size));
  }
  ParcollSettings settings;
  settings.num_groups = hints.parcoll_num_groups;
  settings.min_group_size = hints.parcoll_min_group_size;
  settings.view_switch = hints.parcoll_view_switch;
  return settings;
}

const char* to_string(PartitionMode mode) {
  switch (mode) {
    case PartitionMode::SingleGroup:
      return "single-group";
    case PartitionMode::Direct:
      return "direct";
    case PartitionMode::Intermediate:
      return "intermediate-view";
  }
  return "?";
}

std::string ParcollDecision::describe() const {
  std::ostringstream os;
  os << "mode=" << to_string(mode) << " groups=" << num_groups;
  for (std::size_t g = 0; g < aggregators_per_group.size(); ++g) {
    os << " g" << g << "=[";
    const auto& aggregators = aggregators_per_group[g];
    for (std::size_t i = 0; i < aggregators.size(); ++i) {
      if (i > 0) os << ",";
      os << aggregators[i];
    }
    os << "]";
  }
  return os.str();
}

}  // namespace parcoll::core
