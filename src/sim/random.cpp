#include "sim/random.hpp"

namespace parcoll::sim {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 12) + (a >> 4)));
}

double uniform01(std::uint64_t h) {
  // Use the top 53 bits for a uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double jitter01(std::uint64_t seed, std::uint64_t stream, std::uint64_t seq) {
  return uniform01(hash_combine(hash_combine(mix64(seed), stream), seq));
}

}  // namespace parcoll::sim
