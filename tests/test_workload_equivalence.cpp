// Cross-implementation equivalence: for each workload, the file contents
// after a collective write must be byte-identical whether the call ran
// through plain ext2ph, ParColl (direct or intermediate), ParColl-auto,
// or with collective buffering disabled (sieving) — plus epio sanity.
#include <gtest/gtest.h>

#include <optional>

#include "core/file_area.hpp"
#include "workloads/btio.hpp"
#include "workloads/flashio.hpp"
#include "workloads/ior.hpp"
#include "workloads/tileio.hpp"

namespace parcoll::workloads {
namespace {

RunSpec spec_for(Impl impl, int groups) {
  RunSpec spec;
  spec.impl = impl;
  spec.parcoll_groups = groups;
  spec.min_group_size = 2;
  spec.byte_true = true;
  spec.cb_buffer_size = 4096;
  return spec;
}

struct Variant {
  const char* name;
  Impl impl;
  int groups;
};

const Variant kVariants[] = {
    {"ext2ph", Impl::Ext2ph, 0},
    {"parcoll-2", Impl::ParColl, 2},
    {"parcoll-4", Impl::ParColl, 4},
    {"parcoll-auto", Impl::ParColl, core::kAutoGroups},
    {"sieving", Impl::Sieving, 0},
};

TEST(WorkloadEquivalence, TileIoAllImplsVerify) {
  TileIOConfig config;
  config.tiles_x = 4;
  config.tile_w = 8;
  config.tile_h = 4;
  config.elem_size = 8;
  for (const Variant& variant : kVariants) {
    const auto result =
        run_tileio(config, 8, spec_for(variant.impl, variant.groups), true);
    EXPECT_TRUE(result.verified) << variant.name;
    EXPECT_EQ(result.bytes, config.file_bytes(8)) << variant.name;
  }
}

TEST(WorkloadEquivalence, BtioAllImplsVerify) {
  BtIOConfig config;
  config.grid = 12;
  config.nsteps = 2;
  for (const Variant& variant : kVariants) {
    const auto result =
        run_btio(config, 9, spec_for(variant.impl, variant.groups), true);
    EXPECT_TRUE(result.verified) << variant.name;
  }
}

TEST(WorkloadEquivalence, FlashAllImplsVerify) {
  FlashConfig config;
  config.nxb = 4;
  config.nguard = 1;
  config.nblocks = 3;
  config.nvars = 2;
  for (const Variant& variant : kVariants) {
    const auto result =
        run_flashio(config, 8, spec_for(variant.impl, variant.groups), true);
    EXPECT_TRUE(result.verified) << variant.name;
  }
}

TEST(WorkloadEquivalence, IorAllImplsVerify) {
  IorConfig config;
  config.block_size = 32 << 10;
  config.xfer_size = 8 << 10;
  for (const Variant& variant : kVariants) {
    const auto result =
        run_ior(config, 8, spec_for(variant.impl, variant.groups), true);
    EXPECT_TRUE(result.verified) << variant.name;
  }
}

TEST(WorkloadEquivalence, EpioVerifiesAndBeatsSharedFileAtSmallScale) {
  BtIOConfig config;
  config.grid = 12;
  config.nsteps = 2;
  const auto epio = run_btio_epio(config, 9, spec_for(Impl::Ext2ph, 0));
  EXPECT_TRUE(epio.verified);
  // Contiguous per-process files avoid the whole shared-file problem.
  const auto shared = run_btio(config, 9, spec_for(Impl::Ext2ph, 0), true);
  EXPECT_LT(epio.elapsed, shared.elapsed);
}

TEST(WorkloadEquivalence, PlotfilesThroughEveryImpl) {
  auto config = FlashConfig::plotfile_corner();
  config.nxb = 3;
  config.nblocks = 2;
  config.nvars = 2;
  for (const Variant& variant : kVariants) {
    const auto result =
        run_flashio(config, 4, spec_for(variant.impl, variant.groups), true);
    EXPECT_TRUE(result.verified) << variant.name;
  }
}

}  // namespace
}  // namespace parcoll::workloads
