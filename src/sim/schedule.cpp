#include "sim/schedule.hpp"

#include <stdexcept>

#include "sim/random.hpp"

namespace parcoll::sim {

SchedulePolicy SchedulePolicy::random(std::uint64_t seed) {
  SchedulePolicy policy;
  policy.kind = TieBreak::Random;
  policy.seed = seed;
  return policy;
}

SchedulePolicy SchedulePolicy::dfs(std::vector<std::uint32_t> choices) {
  SchedulePolicy policy;
  policy.kind = TieBreak::Dfs;
  policy.choices = std::move(choices);
  return policy;
}

SchedulePolicy SchedulePolicy::parse(const std::string& token) {
  if (token.empty()) {
    throw std::invalid_argument("schedule token: empty");
  }
  switch (token[0]) {
    case 'p':
      if (token.size() != 1) {
        throw std::invalid_argument("schedule token: trailing text after 'p'");
      }
      return program();
    case 'r': {
      const std::string digits = token.substr(1);
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("schedule token: 'r' needs a seed: " +
                                    token);
      }
      return random(std::stoull(digits));
    }
    case 'd': {
      std::vector<std::uint32_t> choices;
      std::size_t pos = 1;
      while (pos < token.size()) {
        const std::size_t dot = token.find('.', pos);
        const std::string field =
            token.substr(pos, dot == std::string::npos ? dot : dot - pos);
        if (field.empty() ||
            field.find_first_not_of("0123456789") != std::string::npos) {
          throw std::invalid_argument("schedule token: bad DFS choice: " +
                                      token);
        }
        choices.push_back(static_cast<std::uint32_t>(std::stoul(field)));
        pos = dot == std::string::npos ? token.size() : dot + 1;
        if (dot != std::string::npos && pos == token.size()) {
          throw std::invalid_argument("schedule token: trailing '.': " + token);
        }
      }
      return dfs(std::move(choices));
    }
    default:
      throw std::invalid_argument("schedule token: unknown kind: " + token);
  }
}

std::string SchedulePolicy::token() const {
  switch (kind) {
    case TieBreak::Program:
      return "p";
    case TieBreak::Random:
      return "r" + std::to_string(seed);
    case TieBreak::Dfs: {
      std::string text = "d";
      for (std::size_t i = 0; i < choices.size(); ++i) {
        if (i > 0) text += '.';
        text += std::to_string(choices[i]);
      }
      return text;
    }
  }
  return "?";
}

std::uint32_t SchedulePolicy::pick(std::uint64_t step,
                                   std::uint32_t alternatives) const {
  if (alternatives <= 1) return 0;
  switch (kind) {
    case TieBreak::Program:
      return 0;
    case TieBreak::Random:
      return static_cast<std::uint32_t>(mix64(hash_combine(seed, step)) %
                                        alternatives);
    case TieBreak::Dfs: {
      if (step >= choices.size()) return 0;
      const std::uint32_t choice = choices[static_cast<std::size_t>(step)];
      return choice < alternatives ? choice : alternatives - 1;
    }
  }
  return 0;
}

std::optional<std::vector<std::uint32_t>> dfs_next(
    const std::vector<ScheduleChoice>& log, std::size_t depth_limit) {
  const std::size_t depth = std::min(log.size(), depth_limit);
  for (std::size_t i = depth; i-- > 0;) {
    if (log[i].chosen + 1 < log[i].alternatives) {
      std::vector<std::uint32_t> prefix;
      prefix.reserve(i + 1);
      for (std::size_t j = 0; j < i; ++j) {
        prefix.push_back(log[j].chosen);
      }
      prefix.push_back(log[i].chosen + 1);
      return prefix;
    }
  }
  return std::nullopt;
}

std::uint64_t schedule_signature(const std::vector<ScheduleChoice>& log) {
  std::uint64_t h = 0x5ca1ab1eu;
  for (const ScheduleChoice& choice : log) {
    h = hash_combine(h, (static_cast<std::uint64_t>(choice.alternatives) << 32) |
                            choice.chosen);
  }
  return h;
}

}  // namespace parcoll::sim
