#include "core/file_area.hpp"

#include <algorithm>
#include <limits>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <tuple>

namespace parcoll::core {

namespace {

constexpr std::uint64_t kNoOffset = std::numeric_limits<std::uint64_t>::max();

std::uint64_t absdiff(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : b - a;
}

/// Greedy balanced selection of `groups - 1` split positions from `valid`
/// (ascending positions into an ordering of P ranks). `cum[i]` is the byte
/// total of the first i+1 ranks. Each resulting group must have at least
/// `min_size` ranks; fewer splits are returned when the constraints cannot
/// be met.
std::vector<std::size_t> choose_splits(const std::vector<std::uint64_t>& cum,
                                       const std::vector<std::size_t>& valid,
                                       int groups, int min_size) {
  std::vector<std::size_t> chosen;
  if (groups <= 1 || cum.empty()) return chosen;
  const std::size_t nranks = cum.size();
  const std::uint64_t total = cum.back();
  std::size_t prev = 0;
  std::size_t vi = 0;
  for (int g = 1; g < groups; ++g) {
    const std::uint64_t target =
        total * static_cast<std::uint64_t>(g) / static_cast<std::uint64_t>(groups);
    std::size_t best = 0;
    std::size_t best_index = 0;
    std::uint64_t best_diff = std::numeric_limits<std::uint64_t>::max();
    bool found = false;
    for (std::size_t i = vi; i < valid.size(); ++i) {
      const std::size_t p = valid[i];
      if (p < prev + static_cast<std::size_t>(min_size)) {
        vi = i + 1;  // group would be too small; never valid again
        continue;
      }
      if (nranks - p <
          static_cast<std::size_t>(groups - g) * static_cast<std::size_t>(min_size)) {
        break;  // not enough ranks left for the remaining groups
      }
      const std::uint64_t diff = absdiff(cum[p - 1], target);
      if (diff <= best_diff) {
        best = p;
        best_index = i;
        best_diff = diff;
        found = true;
      }
      if (cum[p - 1] >= target) {
        break;  // past the target; later splits are only less balanced
      }
    }
    if (!found) break;
    chosen.push_back(best);
    prev = best;
    vi = best_index + 1;
  }
  return chosen;
}

}  // namespace

std::vector<std::size_t> clean_split_points(const std::vector<RankAccess>& ranks,
                                            const std::vector<int>& order) {
  const std::size_t nranks = order.size();
  std::vector<std::size_t> splits;
  if (nranks < 2) return splits;
  // prefix_max_end[i]: max end over the first i+1 ordered ranks with data.
  std::vector<std::uint64_t> prefix_max_end(nranks, 0);
  std::vector<std::uint64_t> suffix_min_st(nranks, kNoOffset);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < nranks; ++i) {
    const RankAccess& access = ranks[static_cast<std::size_t>(order[i])];
    if (access.bytes > 0) running = std::max(running, access.end);
    prefix_max_end[i] = running;
  }
  std::uint64_t trailing = kNoOffset;
  for (std::size_t i = nranks; i-- > 0;) {
    const RankAccess& access = ranks[static_cast<std::size_t>(order[i])];
    if (access.bytes > 0) trailing = std::min(trailing, access.st);
    suffix_min_st[i] = trailing;
  }
  for (std::size_t p = 1; p < nranks; ++p) {
    if (prefix_max_end[p - 1] <= suffix_min_st[p]) {
      splits.push_back(p);
    }
  }
  return splits;
}

FileAreaPlan partition_file_areas(const std::vector<RankAccess>& ranks,
                                  int requested_groups, int min_group_size,
                                  bool allow_view_switch) {
  const std::size_t nranks = ranks.size();
  if (nranks == 0) {
    throw std::invalid_argument("partition_file_areas: no ranks");
  }
  min_group_size = std::max(1, min_group_size);

  FileAreaPlan plan;
  plan.group_of_rank.assign(nranks, 0);

  // Overall range, for the single-group area.
  std::uint64_t min_st = kNoOffset;
  std::uint64_t max_end = 0;
  for (const RankAccess& access : ranks) {
    if (access.bytes > 0) {
      min_st = std::min(min_st, access.st);
      max_end = std::max(max_end, access.end);
    }
  }
  const auto single_group = [&] {
    plan.mode = PartitionMode::SingleGroup;
    plan.num_groups = 1;
    std::fill(plan.group_of_rank.begin(), plan.group_of_rank.end(), 0);
    plan.areas = {{min_st == kNoOffset ? 0 : min_st, max_end}};
    return plan;
  };

  const int group_cap = std::max(1, static_cast<int>(nranks) / min_group_size);
  if ((requested_groups != kAutoGroups && requested_groups <= 1) ||
      group_cap <= 1 || max_end <= (min_st == kNoOffset ? 0 : min_st)) {
    return single_group();
  }

  // Order ranks by start offset (empty ranks last).
  std::vector<int> order(nranks);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto key = [&](int r) {
      const RankAccess& access = ranks[static_cast<std::size_t>(r)];
      return std::make_tuple(access.bytes > 0 ? access.st : kNoOffset,
                             access.bytes > 0 ? access.end : kNoOffset, r);
    };
    return key(a) < key(b);
  });
  std::vector<std::uint64_t> cum(nranks, 0);
  {
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < nranks; ++i) {
      running += ranks[static_cast<std::size_t>(order[i])].bytes;
      cum[i] = running;
    }
  }

  const std::vector<std::size_t> valid = clean_split_points(ranks, order);

  int groups;
  if (requested_groups == kAutoGroups) {
    // Adaptive choice: take every clean split the least group size
    // permits; a scattered pattern gets ~sqrt(P) intermediate groups
    // (the granularity/coordination balance point — cf. BT-IO, where
    // sqrt(P) groups align with the processor rows).
    if (!valid.empty()) {
      groups = std::min(group_cap, static_cast<int>(valid.size()) + 1);
    } else if (allow_view_switch) {
      groups = std::min(
          group_cap,
          std::max(2, static_cast<int>(std::lround(std::sqrt(
                          static_cast<double>(nranks))))));
    } else {
      return single_group();
    }
  } else {
    groups = std::max(1, std::min(requested_groups, group_cap));
  }
  if (groups <= 1) {
    return single_group();
  }

  const auto build_direct = [&](const std::vector<std::size_t>& splits) {
    plan.mode = PartitionMode::Direct;
    plan.num_groups = static_cast<int>(splits.size()) + 1;
    std::size_t begin = 0;
    for (int g = 0; g < plan.num_groups; ++g) {
      const std::size_t end =
          g + 1 < plan.num_groups ? splits[static_cast<std::size_t>(g)] : nranks;
      std::uint64_t lo = kNoOffset;
      std::uint64_t hi = 0;
      for (std::size_t i = begin; i < end; ++i) {
        const int r = order[i];
        plan.group_of_rank[static_cast<std::size_t>(r)] = g;
        const RankAccess& access = ranks[static_cast<std::size_t>(r)];
        if (access.bytes > 0) {
          lo = std::min(lo, access.st);
          hi = std::max(hi, access.end);
        }
      }
      if (lo == kNoOffset) {  // group of empty ranks: degenerate area
        lo = plan.areas.empty() ? 0 : plan.areas.back().second;
        hi = lo;
      }
      plan.areas.emplace_back(lo, hi);
      begin = end;
    }
    return plan;
  };

  if (static_cast<int>(valid.size()) + 1 >= groups) {
    // Patterns (a)/(b): enough clean boundaries for the requested count.
    auto splits = choose_splits(cum, valid, groups, min_group_size);
    if (splits.empty()) return single_group();
    return build_direct(splits);
  }

  if (allow_view_switch) {
    // Pattern (c): switch to the intermediate file view. Groups are
    // contiguous rank blocks (rank-major concatenation makes the
    // intermediate pattern serial).
    plan.mode = PartitionMode::Intermediate;
    plan.inter_start.resize(nranks);
    std::vector<std::uint64_t> cum_rank(nranks, 0);
    std::uint64_t running = 0;
    for (std::size_t r = 0; r < nranks; ++r) {
      plan.inter_start[r] = running;
      running += ranks[r].bytes;
      cum_rank[r] = running;
    }
    std::vector<std::size_t> all_positions;
    all_positions.reserve(nranks - 1);
    for (std::size_t p = 1; p < nranks; ++p) all_positions.push_back(p);
    auto splits = choose_splits(cum_rank, all_positions, groups, min_group_size);
    if (splits.empty()) return single_group();
    plan.num_groups = static_cast<int>(splits.size()) + 1;
    std::size_t begin = 0;
    for (int g = 0; g < plan.num_groups; ++g) {
      const std::size_t end =
          g + 1 < plan.num_groups ? splits[static_cast<std::size_t>(g)] : nranks;
      for (std::size_t r = begin; r < end; ++r) {
        plan.group_of_rank[r] = g;
      }
      const std::uint64_t lo = plan.inter_start[begin];
      const std::uint64_t hi = end < nranks ? plan.inter_start[end] : running;
      plan.areas.emplace_back(lo, hi);
      begin = end;
    }
    return plan;
  }

  // View switch disabled: use whatever clean boundaries exist.
  auto splits = choose_splits(cum, valid,
                              static_cast<int>(valid.size()) + 1,
                              min_group_size);
  if (splits.empty()) return single_group();
  return build_direct(splits);
}

}  // namespace parcoll::core
