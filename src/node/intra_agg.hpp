// Intra-node request aggregation: the first level of two-level collective
// I/O.
//
// Non-leader processes ship their flattened request extents (and, for
// writes, the packed data stream) to their node leader over the cheap
// intra-node path; the leader merges all of its node's requests into one
// coalesced node-level request and joins the inter-node ext2ph exchange
// over the leader communicator. For reads the leader scatters each
// member's slice of the result back. Non-leaders never touch the network
// or the file system.
//
// All intra-node shipping and staging time is charged to TimeCat::Intra,
// so the cost of the extra level is visible next to the Sync time it
// removes.
#pragma once

#include <cstdint>

#include "mpiio/ext2ph.hpp"
#include "node/nodecomm.hpp"

namespace parcoll::node {

struct TwoLevelOutcome {
  std::uint64_t cycles = 0;       // ext2ph cycles (leaders; 0 on non-leaders)
  std::uint64_t rmw_reads = 0;    // aggregator RMW fills (leaders)
  std::uint64_t intra_bytes = 0;  // payload this rank moved intra-node
};

/// Two-level collective write over `nodes.parent`. Every member must call
/// with the same `leader_options`, whose aggregator list is expressed in
/// leader_comm-local ranks (see NodeComm::to_leader_locals).
TwoLevelOutcome two_level_write(mpi::Rank& self, const NodeComm& nodes,
                                mpiio::IoTarget& target,
                                const mpiio::CollRequest& request,
                                const mpiio::Ext2phOptions& leader_options);

/// Two-level collective read over `nodes.parent`.
TwoLevelOutcome two_level_read(mpi::Rank& self, const NodeComm& nodes,
                               mpiio::IoTarget& target,
                               const mpiio::CollRequest& request,
                               const mpiio::Ext2phOptions& leader_options);

}  // namespace parcoll::node
