// micro_engine — DES-engine scaling bench and bit-identity gate.
//
// Two jobs in one binary:
//
//  1. Bit-identity gate (always on): re-runs two small byte-true workloads
//     (tile + IOR) in sequential/program-order mode and compares content
//     digest, schedule token, and simulated clocks against constants pinned
//     from the pre-calendar-queue engine. Any drift means the engine's
//     (time, seq) total order changed — a correctness bug, not a tuning
//     matter — and the bench exits non-zero so CI fails.
//
//  2. Engine scaling: a synthetic sleep-storm at 1k/10k/100k ranks, a
//     spawn-churn phase that exercises the fiber stack pool, and a
//     ParColl IOR run at scale. Reports host events/s, queue depth, stack
//     pool hits, and peak RSS; --json feeds bench_to_trajectory.
//
// --smoke keeps the rank counts CI-sized (drops the 100k tier).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/file_area.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "workloads/ior.hpp"
#include "workloads/tileio.hpp"

namespace {

using namespace parcoll;
using workloads::RunResult;
using workloads::RunSpec;

// Golden values captured from the pre-PR engine (binary-heap queue,
// ucontext fibers, 256 KiB stacks) for the same configs, byte-true,
// program-order schedule. The calendar queue, callback arena, pooled
// stacks, and fast context switch must reproduce every one of them
// bit-for-bit.
struct Golden {
  const char* name;
  std::uint64_t file_digest;
  const char* schedule_token;
  double elapsed;
  double total_elapsed;
  std::uint64_t bytes;
  std::uint64_t fs_rpcs;
};

constexpr Golden kGoldenTile = {
    "tileio-32", 2837233136922917773ull, "p",
    0.062553776237471187, 0.063203776237471185, 32768, 32};
constexpr Golden kGoldenIor = {
    "ior-32", 372189963690044911ull, "p",
    0.11984201252554912, 0.12049201252554911, 8388608, 128};

/// Pre-PR engine throughput on the 10k-rank sleep storm, measured on the
/// same container the goldens were pinned on (RelWithDebInfo, one core).
/// Reference point for the printed speedup, not a pass/fail gate — absolute
/// events/s shifts with the host.
constexpr double kSeedEventsPerSec10k = 257930.0;

bool check_golden(const Golden& want, const RunResult& got) {
  bool ok = true;
  const auto mismatch = [&](const char* field, const std::string& want_s,
                            const std::string& got_s) {
    std::fprintf(stderr,
                 "BIT-IDENTITY MISMATCH %s.%s: pinned %s, got %s\n",
                 want.name, field, want_s.c_str(), got_s.c_str());
    ok = false;
  };
  char buf[64];
  const auto fmt_u64 = [&](std::uint64_t v) {
    std::snprintf(buf, sizeof buf, "%llu", (unsigned long long)v);
    return std::string(buf);
  };
  const auto fmt_d = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return std::string(buf);
  };
  if (got.file_digest != want.file_digest) {
    mismatch("file_digest", fmt_u64(want.file_digest),
             fmt_u64(got.file_digest));
  }
  if (got.schedule_token != want.schedule_token) {
    mismatch("schedule_token", want.schedule_token, got.schedule_token);
  }
  if (got.elapsed != want.elapsed) {
    mismatch("elapsed", fmt_d(want.elapsed), fmt_d(got.elapsed));
  }
  if (got.total_elapsed != want.total_elapsed) {
    mismatch("total_elapsed", fmt_d(want.total_elapsed),
             fmt_d(got.total_elapsed));
  }
  if (got.bytes != want.bytes) {
    mismatch("bytes", fmt_u64(want.bytes), fmt_u64(got.bytes));
  }
  if (got.fs_rpcs != want.fs_rpcs) {
    mismatch("fs_rpcs", fmt_u64(want.fs_rpcs), fmt_u64(got.fs_rpcs));
  }
  if (!got.verified) {
    std::fprintf(stderr, "BIT-IDENTITY MISMATCH %s: byte audit failed\n",
                 want.name);
    ok = false;
  }
  return ok;
}

bool run_identity_gate(bench::BenchReport& report) {
  RunSpec tile_spec;
  tile_spec.impl = workloads::Impl::ParColl;
  tile_spec.parcoll_groups = 4;
  tile_spec.min_group_size = 2;
  tile_spec.byte_true = true;
  workloads::TileIOConfig tile;
  tile.tiles_x = 8;
  tile.tile_w = 16;
  tile.tile_h = 8;
  tile.elem_size = 8;
  const RunResult tile_got = workloads::run_tileio(tile, 32, tile_spec, true);

  RunSpec ior_spec;
  ior_spec.impl = workloads::Impl::Ext2ph;
  ior_spec.byte_true = true;
  workloads::IorConfig ior;
  ior.block_size = 256 << 10;
  ior.xfer_size = 64 << 10;
  const RunResult ior_got = workloads::run_ior(ior, 32, ior_spec, true);

  const bool tile_ok = check_golden(kGoldenTile, tile_got);
  const bool ior_ok = check_golden(kGoldenIor, ior_got);
  std::printf("  %-22s %s (digest %llu, schedule %s)\n", kGoldenTile.name,
              tile_ok ? "bit-identical" : "MISMATCH",
              (unsigned long long)tile_got.file_digest,
              tile_got.schedule_token.c_str());
  std::printf("  %-22s %s (digest %llu, schedule %s)\n", kGoldenIor.name,
              ior_ok ? "bit-identical" : "MISMATCH",
              (unsigned long long)ior_got.file_digest,
              ior_got.schedule_token.c_str());
  report.add("identity:tileio", 32, tile_got,
             {{"bit_identical", tile_ok ? 1.0 : 0.0}});
  report.add("identity:ior", 32, ior_got,
             {{"bit_identical", ior_ok ? 1.0 : 0.0}});
  return tile_ok && ior_ok;
}

std::vector<std::pair<std::string, double>> engine_extras(
    const sim::EngineStats& stats) {
  return {{"events_per_s", stats.events_per_second()},
          {"wall_s", stats.run_wall_seconds},
          {"peak_queue_depth", (double)stats.peak_queue_depth},
          {"stacks_allocated", (double)stats.stacks_allocated},
          {"stacks_reused", (double)stats.stacks_reused},
          {"peak_rss_mib", (double)sim::peak_rss_bytes() / (1 << 20)}};
}

/// Sleep storm: every rank does `rounds` pseudo-random sleeps, all ranks
/// live at once. Stresses the queue (nranks concurrent events, mixed
/// horizons) and the switch path (each event is a cold-stack resume).
sim::EngineStats sleep_storm(int nranks, int rounds) {
  sim::Engine engine;
  for (int i = 0; i < nranks; ++i) {
    engine.spawn([&engine, i, rounds] {
      std::uint64_t x = 88172645463325252ull ^ (std::uint64_t)i;
      for (int k = 0; k < rounds; ++k) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        engine.sleep(1e-6 * (double)(x % 1000));
      }
    });
  }
  engine.run();
  return engine.stats();
}

/// Spawn churn: `total` short-lived fibers with at most `width` alive at a
/// time. Steady state must serve stacks from the pool, not the allocator.
sim::EngineStats spawn_churn(int total, int width) {
  sim::Engine engine;
  int next = width;
  std::function<void()> body = [&engine, &body, &next, total] {
    engine.sleep(1e-6);
    if (next < total) {
      ++next;
      engine.spawn(body);
    }
  };
  for (int i = 0; i < width; ++i) {
    engine.spawn(body);
  }
  engine.run();
  return engine.stats();
}

void print_engine_row(const char* series, int nranks,
                      const sim::EngineStats& stats) {
  std::printf(
      "  %-22s %8d ranks  %12.0f ev/s  wall %7.3f s  queue %8llu  "
      "stacks %llu+%llu pooled\n",
      series, nranks, stats.events_per_second(), stats.run_wall_seconds,
      (unsigned long long)stats.peak_queue_depth,
      (unsigned long long)stats.stacks_allocated,
      (unsigned long long)stats.stacks_reused);
}

/// Wrap synthetic engine stats as a RunResult so BenchReport::add can
/// carry them (elapsed = host wall so the JSON row is self-describing).
RunResult synthetic_result(const sim::EngineStats& stats) {
  RunResult result;
  result.elapsed = stats.run_wall_seconds;
  result.engine = stats;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::smoke_requested(argc, argv);
  bench::BenchReport report("micro_engine", argc, argv);

  bench::header("micro_engine",
                "DES engine scaling: calendar queue, arena events, pooled "
                "small-stack fibers");

  std::printf("bit-identity gate (sequential mode vs pre-PR pins):\n");
  const bool identical = run_identity_gate(report);

  std::printf("sleep storm (%d sleeps/rank, virtual horizon 1 ms):\n", 50);
  double events_per_s_10k = 0.0;
  const std::vector<int> tiers =
      smoke ? std::vector<int>{1000, 10000}
            : std::vector<int>{1000, 10000, 100000};
  for (const int nranks : tiers) {
    // Best-of-3 on the 10k tier: it carries the printed speedup figure, and
    // single runs on a shared host wobble by tens of percent. The other
    // tiers are informational, one rep each.
    const int reps = nranks == 10000 ? 3 : 1;
    sim::EngineStats stats = sleep_storm(nranks, 50);
    for (int rep = 1; rep < reps; ++rep) {
      const sim::EngineStats again = sleep_storm(nranks, 50);
      if (again.events_per_second() > stats.events_per_second()) {
        stats = again;
      }
    }
    char series[32];
    std::snprintf(series, sizeof series, "storm-%dk", nranks / 1000);
    print_engine_row(series, nranks, stats);
    std::vector<std::pair<std::string, double>> extras = engine_extras(stats);
    if (nranks == 10000) {
      events_per_s_10k = stats.events_per_second();
      extras.emplace_back("speedup_vs_seed",
                          events_per_s_10k / kSeedEventsPerSec10k);
    }
    report.add(series, nranks, synthetic_result(stats), extras);
  }
  if (events_per_s_10k > 0.0) {
    std::printf("  speedup at 10k ranks vs pre-PR engine: %.1fx "
                "(pinned baseline %.0f ev/s)\n",
                events_per_s_10k / kSeedEventsPerSec10k, kSeedEventsPerSec10k);
  }

  {
    const int total = smoke ? 50000 : 200000;
    const int width = 64;
    const sim::EngineStats stats = spawn_churn(total, width);
    std::printf("spawn churn (%d fibers, %d live):\n", total, width);
    print_engine_row("churn", total, stats);
    bench::footnote("pooled stacks: allocations stay near the live width, "
                    "not the spawn count");
    report.add("churn", total, synthetic_result(stats), engine_extras(stats));
  }

  {
    // The paper's own answer to scale: partitioned collectives keep the
    // exchange inside subgroups, so a six-figure rank count stays tractable
    // — for the simulated machine and for this simulator.
    const int nranks = smoke ? 4096 : 100000;
    std::printf("parcoll IOR at scale (%d ranks, phantom payloads):\n",
                nranks);
    RunSpec spec;
    spec.impl = workloads::Impl::ParColl;
    spec.parcoll_groups = core::kAutoGroups;
    spec.byte_true = false;
    workloads::IorConfig config;
    config.block_size = 64 << 10;
    config.xfer_size = 64 << 10;
    const auto wall0 = std::chrono::steady_clock::now();
    const RunResult result = workloads::run_ior(config, nranks, spec, true);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall0)
            .count();
    std::printf(
        "  %-22s %8d ranks  %12.0f ev/s  wall %7.3f s  %10.1f MiB/s "
        "(virtual)\n",
        "ior-parcoll", nranks, result.engine.events_per_second(), wall,
        result.bandwidth_mib());
    print_engine_row("ior-parcoll-engine", nranks, result.engine);
    std::vector<std::pair<std::string, double>> extras =
        engine_extras(result.engine);
    extras.emplace_back("host_wall_s", wall);
    report.add("ior-parcoll", nranks, result, extras);
  }

  if (!identical) {
    std::fprintf(stderr,
                 "micro_engine: bit-identity gate FAILED — engine schedule "
                 "or file contents drifted from the pinned goldens\n");
    return 1;
  }
  std::printf("  bit-identity gate: PASS\n");
  return 0;
}
