// Figure 10 — "The Performance of BT-IO with ParColl".
//
// NAS BT-IO class C (162^3 grid, 5 doubles per point), full mode: one
// collective dump of the diagonally multi-partitioned solution per step.
// Every process's segments spread across the whole file (pattern c), so
// ParColl must switch to intermediate file views. Configuration: one
// subgroup per processor row (sqrt(P) subgroups of sqrt(P) ranks — the
// natural grouping whose physical bands are disjoint) with one aggregator
// node per subgroup. The paper: ParColl beats the baseline at every
// process count; the best absolute performance sits mid-range (576),
// the tradeoff between process count and request granularity.
#include <cmath>

#include "bench/common.hpp"
#include "workloads/btio.hpp"

int main(int argc, char** argv) {
  using namespace parcoll;
  using namespace parcoll::bench;
  BenchReport report("fig10_btio", argc, argv);

  header("Figure 10", "NAS BT-IO class C (full mode), 3 of 40 steps");
  workloads::BtIOConfig config;  // class C
  config.nsteps = 3;             // scaled from 40 for simulation time

  std::printf("  %6s %14s %14s %8s %14s\n", "nprocs", "Cray (MiB/s)",
              "ParColl (MiB/s)", "ratio", "epio (MiB/s)");
  for (int nprocs : {256, 400, 576, 784, 1024}) {
    const int nc = static_cast<int>(std::lround(std::sqrt(nprocs)));
    const auto base =
        workloads::run_btio(config, nprocs, baseline_spec(), /*write=*/true);
    auto spec = parcoll_spec(nprocs / nc);
    spec.cb_nodes = nprocs / nc;  // one aggregator node per subgroup
    const auto best = workloads::run_btio(config, nprocs, spec, true);
    // File-per-process upper bound (no shared-file coordination at all).
    const auto epio = workloads::run_btio_epio(config, nprocs,
                                               baseline_spec());
    std::printf("  %6d %14.1f %14.1f %7.2fx %14.1f\n", nprocs,
                base.bandwidth_mib(), best.bandwidth_mib(),
                best.bandwidth() / base.bandwidth(), epio.bandwidth_mib());
    report.add("cray", nprocs, base);
    report.add("parcoll", nprocs, best);
    report.add("epio", nprocs, epio);
  }
  footnote("paper: ParColl wins at every P; patterns require intermediate");
  footnote("file views (Fig 4c); best absolute performance mid-range");
  return 0;
}
