// Striping math: how a Lustre file's byte range maps onto its OSTs.
//
// A file striped over `stripe_count` OSTs with stripe size S places bytes
// [k*S, (k+1)*S) on stripe index k % stripe_count. Splitting an extent at
// stripe boundaries yields the per-OST pieces that become RPCs.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace parcoll::fs {

/// A byte range of a file: [offset, offset + length).
struct Extent {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  [[nodiscard]] std::uint64_t end() const { return offset + length; }
  bool operator==(const Extent&) const = default;
};

/// One stripe-contiguous piece of an extent.
struct StripeChunk {
  int stripe_index = 0;         // which stripe (0..stripe_count-1)
  std::uint64_t file_offset = 0;
  std::uint64_t length = 0;
};

/// Invoke `fn` for each stripe-aligned piece of `extent`, in file order.
void for_each_stripe_chunk(const Extent& extent, std::uint64_t stripe_size,
                           int stripe_count,
                           const std::function<void(const StripeChunk&)>& fn);

/// Convenience: materialize the chunks of an extent.
[[nodiscard]] std::vector<StripeChunk> stripe_chunks(const Extent& extent,
                                                     std::uint64_t stripe_size,
                                                     int stripe_count);

/// Round `offset` down to the containing stripe boundary.
[[nodiscard]] std::uint64_t stripe_floor(std::uint64_t offset,
                                         std::uint64_t stripe_size);

/// Round `offset` up to the next stripe boundary (identity if aligned).
[[nodiscard]] std::uint64_t stripe_ceil(std::uint64_t offset,
                                        std::uint64_t stripe_size);

}  // namespace parcoll::fs
