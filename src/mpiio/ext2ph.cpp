#include "mpiio/ext2ph.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "mpi/collectives.hpp"
#include "mpi/p2p.hpp"
#include "mpi/trace.hpp"
#include "obs/metrics.hpp"

namespace parcoll::mpiio {

namespace {

constexpr int kTagReq = 1000;   // request-dissemination offset lists
constexpr int kTagData = 2000;  // + cycle index: exchange-phase payloads

/// A sub-extent of one rank's request, remembering where its bytes sit in
/// that rank's packed data stream.
struct Piece {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t stream_pos = 0;
};

/// Clip monotone `extents` to [lo, hi); `prefix[i]` is the stream offset of
/// extents[i].
std::vector<Piece> clip_stream(const std::vector<fs::Extent>& extents,
                               const std::vector<std::uint64_t>& prefix,
                               std::uint64_t lo, std::uint64_t hi) {
  std::vector<Piece> pieces;
  // First extent whose end is beyond lo.
  auto it = std::partition_point(
      extents.begin(), extents.end(),
      [lo](const fs::Extent& e) { return e.end() <= lo; });
  for (; it != extents.end() && it->offset < hi; ++it) {
    const std::uint64_t begin = std::max(it->offset, lo);
    const std::uint64_t end = std::min(it->end(), hi);
    if (begin >= end) continue;
    const auto index = static_cast<std::size_t>(it - extents.begin());
    pieces.push_back(Piece{begin, end - begin,
                           prefix[index] + (begin - it->offset)});
  }
  return pieces;
}

/// Clip plain extents (aggregator's stored request lists) to [lo, hi).
std::vector<fs::Extent> clip_extents(const std::vector<fs::Extent>& extents,
                                     std::uint64_t lo, std::uint64_t hi) {
  std::vector<fs::Extent> out;
  auto it = std::partition_point(
      extents.begin(), extents.end(),
      [lo](const fs::Extent& e) { return e.end() <= lo; });
  for (; it != extents.end() && it->offset < hi; ++it) {
    const std::uint64_t begin = std::max(it->offset, lo);
    const std::uint64_t end = std::min(it->end(), hi);
    if (begin < end) out.push_back(fs::Extent{begin, end - begin});
  }
  return out;
}

/// Trivially copyable covered-range record for the st_loc/end_loc Allgather.
struct CoveredLoc {
  std::uint64_t st = 0;
  std::uint64_t end = 0;
};

/// Everything both directions of the protocol share: the result of phases
/// 1-3 (range gathering, file-domain partitioning, request dissemination).
struct Plan {
  bool active = false;
  int nranks = 0;
  int me = -1;
  std::uint64_t min_st = 0;
  std::uint64_t max_end = 0;
  std::uint64_t fd_len = 0;
  std::uint64_t ntimes = 0;
  int my_agg_index = -1;  // index into options.aggregators, or -1
  /// Covered range [st_loc, end_loc) of each aggregator's file domain —
  /// the first/last byte actually requested there (ROMIO's st_loc/end_loc).
  /// Windows walk this range, not the whole domain, so sparse requests do
  /// not spin through empty cycles. Identical on every rank, so all of
  /// them share one copy (a private naggs-sized vector per rank is
  /// quadratic when every process aggregates on a wide comm).
  std::shared_ptr<const std::vector<CoveredLoc>> loc_shared;
  std::vector<std::uint64_t> prefix;  // stream prefix of my extents
  // Aggregator side: per source local rank, its extents within my domain.
  std::vector<std::vector<fs::Extent>> others;

  [[nodiscard]] const CoveredLoc& loc(std::size_t a) const {
    return (*loc_shared)[a];
  }
  [[nodiscard]] std::uint64_t fd_start(int a) const {
    return std::min(max_end, min_st + static_cast<std::uint64_t>(a) * fd_len);
  }
  [[nodiscard]] std::uint64_t fd_end(int a) const {
    return std::min(max_end,
                    min_st + static_cast<std::uint64_t>(a + 1) * fd_len);
  }
  /// Aggregator domain index containing `offset`.
  [[nodiscard]] int agg_of(std::uint64_t offset, int naggs) const {
    if (offset <= min_st) return 0;
    const auto a = static_cast<int>((offset - min_st) / fd_len);
    return std::min(a, naggs - 1);
  }
};

struct RankRange {
  std::uint64_t st;
  std::uint64_t end;
};



Plan make_plan(mpi::Rank& self, const mpi::Comm& comm,
               const CollRequest& request, const Ext2phOptions& options) {
  if (options.aggregators.empty()) {
    throw std::invalid_argument("ext2ph: aggregator list must not be empty");
  }
  if (!std::is_sorted(options.aggregators.begin(),
                      options.aggregators.end())) {
    throw std::invalid_argument("ext2ph: aggregator list must be sorted");
  }
  Plan plan;
  plan.nranks = comm.size();
  plan.me = comm.local_rank(self.rank());
  const int naggs = static_cast<int>(options.aggregators.size());

  // Phase 1: file-range gathering.
  RankRange mine{std::numeric_limits<std::uint64_t>::max(), 0};
  if (!request.extents.empty()) {
    mine.st = request.extents.front().offset;
    mine.end = request.extents.back().end();
  }
  // Exchange bytes identical to a plain allgather; the min/max fold over
  // the P ranges runs once and every rank reads the two shared scalars.
  const auto all_ranges = mpi::coll_run(self, comm, mpi::CollKind::Allgather,
                                        mpi::detail::to_bytes(mine));
  struct FileBounds {
    std::uint64_t min_st = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_end = 0;
  };
  const auto bounds = mpi::shared_once<FileBounds>(self, comm, [&] {
    FileBounds folded;
    for (const auto& contribution : *all_ranges) {
      const RankRange range = mpi::detail::scalar_from<RankRange>(contribution);
      if (range.end > range.st) {  // rank actually has data
        folded.min_st = std::min(folded.min_st, range.st);
        folded.max_end = std::max(folded.max_end, range.end);
      }
    }
    return folded;
  });
  plan.min_st = bounds->min_st;
  plan.max_end = bounds->max_end;
  if (plan.max_end <= plan.min_st) {
    return plan;  // nothing to do anywhere; every rank agrees
  }
  plan.active = true;

  // Phase 2: file-domain partitioning (even division among aggregators,
  // optionally rounded up to stripe boundaries for lock affinity).
  plan.fd_len =
      (plan.max_end - plan.min_st + static_cast<std::uint64_t>(naggs) - 1) /
      static_cast<std::uint64_t>(naggs);
  if (options.fd_alignment > 0) {
    const std::uint64_t align = options.fd_alignment;
    plan.fd_len = (plan.fd_len + align - 1) / align * align;
  }
  const auto agg_it = std::lower_bound(options.aggregators.begin(),
                                       options.aggregators.end(), plan.me);
  if (agg_it != options.aggregators.end() && *agg_it == plan.me) {
    plan.my_agg_index = static_cast<int>(agg_it - options.aggregators.begin());
  }

  // Stream prefix of my extents.
  plan.prefix.reserve(request.extents.size());
  std::uint64_t pos = 0;
  for (const fs::Extent& extent : request.extents) {
    plan.prefix.push_back(pos);
    pos += extent.length;
  }

  // Phase 3: request dissemination. Tell each aggregator which pieces of
  // my request fall inside its file domain (Alltoall of counts, then
  // point-to-point offset lists).
  std::vector<std::uint32_t> counts(static_cast<std::size_t>(plan.nranks), 0);
  std::vector<std::pair<int, std::vector<fs::Extent>>> outgoing;
  if (!request.extents.empty()) {
    const int a_lo = plan.agg_of(mine.st, naggs);
    const int a_hi = plan.agg_of(mine.end - 1, naggs);
    for (int a = a_lo; a <= a_hi; ++a) {
      auto pieces = clip_extents(request.extents, plan.fd_start(a),
                                 plan.fd_end(a));
      if (!pieces.empty()) {
        const int agg_rank = options.aggregators[static_cast<std::size_t>(a)];
        counts[static_cast<std::size_t>(agg_rank)] =
            static_cast<std::uint32_t>(pieces.size());
        outgoing.emplace_back(agg_rank, std::move(pieces));
      }
    }
  }
  const auto incoming_counts = mpi::alltoall(self, comm, counts);

  std::vector<mpi::Request> requests;
  std::vector<std::pair<int, std::vector<fs::Extent>>> incoming;
  auto& p2p = self.world().p2p();
  if (plan.my_agg_index >= 0) {
    plan.others.resize(static_cast<std::size_t>(plan.nranks));
    for (int r = 0; r < plan.nranks; ++r) {
      const std::uint32_t n = incoming_counts[static_cast<std::size_t>(r)];
      if (n == 0) continue;
      incoming.emplace_back(r, std::vector<fs::Extent>(n));
      auto& list = incoming.back().second;
      requests.push_back(p2p.irecv(self, comm, r, kTagReq, list.data(),
                                   list.size() * sizeof(fs::Extent)));
    }
  }
  for (const auto& [agg_rank, pieces] : outgoing) {
    requests.push_back(p2p.isend(self, comm, agg_rank, kTagReq, pieces.data(),
                                 pieces.size() * sizeof(fs::Extent)));
  }
  p2p.waitall(self, requests);
  for (auto& [r, list] : incoming) {
    plan.others[static_cast<std::size_t>(r)] = std::move(list);
  }

  // Covered range of my domain (st_loc/end_loc), from the received request
  // lists; Allgather so every rank can compute every aggregator's windows,
  // and derive the interleaving depth (max cycles over aggregators).
  CoveredLoc my_loc{std::numeric_limits<std::uint64_t>::max(), 0};
  if (plan.my_agg_index >= 0) {
    for (const auto& list : plan.others) {
      if (list.empty()) continue;
      my_loc.st = std::min(my_loc.st, list.front().offset);
      my_loc.end = std::max(my_loc.end, list.back().end());
    }
  }
  const auto all_locs = mpi::coll_run(self, comm, mpi::CollKind::Allgather,
                                      mpi::detail::to_bytes(my_loc));
  plan.loc_shared =
      mpi::shared_once<std::vector<CoveredLoc>>(self, comm, [&] {
        std::vector<CoveredLoc> table;
        table.reserve(options.aggregators.size());
        for (int agg_rank : options.aggregators) {
          table.push_back(mpi::detail::scalar_from<CoveredLoc>(
              (*all_locs)[static_cast<std::size_t>(agg_rank)]));
        }
        return table;
      });
  std::uint64_t max_ntimes = 0;
  for (const CoveredLoc& loc : *plan.loc_shared) {
    if (loc.end > loc.st) {
      max_ntimes = std::max(
          max_ntimes,
          (loc.end - loc.st + options.cb_buffer_size - 1) /
              options.cb_buffer_size);
    }
  }
  plan.ntimes = max_ntimes;
  return plan;
}

/// Merge the per-source window pieces an aggregator will handle this cycle.
struct WindowWork {
  struct Entry {
    std::uint64_t offset;
    std::uint64_t length;
    int source;               // local rank
    std::uint64_t msg_pos;    // byte position within that source's message
  };
  std::vector<Entry> entries;  // sorted by offset
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint64_t total = 0;

  [[nodiscard]] bool empty() const { return entries.empty(); }
  [[nodiscard]] bool has_holes() const { return total != hi - lo; }
};

WindowWork gather_window_work(const Plan& plan,
                              const std::vector<std::uint32_t>& sizes,
                              std::uint64_t win_lo, std::uint64_t win_hi) {
  WindowWork work;
  for (int r = 0; r < plan.nranks; ++r) {
    if (sizes[static_cast<std::size_t>(r)] == 0) continue;
    const auto pieces =
        clip_extents(plan.others[static_cast<std::size_t>(r)], win_lo, win_hi);
    std::uint64_t msg_pos = 0;
    for (const fs::Extent& piece : pieces) {
      work.entries.push_back(
          WindowWork::Entry{piece.offset, piece.length, r, msg_pos});
      msg_pos += piece.length;
    }
    if (msg_pos != sizes[static_cast<std::size_t>(r)]) {
      throw std::logic_error(
          "ext2ph: cycle size mismatch between alltoall and request lists");
    }
  }
  if (work.entries.empty()) return work;
  std::sort(work.entries.begin(), work.entries.end(),
            [](const WindowWork::Entry& a, const WindowWork::Entry& b) {
              return a.offset < b.offset;
            });
  work.lo = work.entries.front().offset;
  work.hi = 0;
  for (const auto& entry : work.entries) {
    work.hi = std::max(work.hi, entry.offset + entry.length);
    work.total += entry.length;
  }
  return work;
}

}  // namespace

void DirectTarget::write(mpi::Rank& self, std::span<const fs::Extent> extents,
                         const std::byte* data) {
  const double start = self.now();
  const fs::IoResult r = fs_.write(self.rank(), file_id_, extents, data);
  self.times().add(mpi::TimeCat::IO, self.now() - start - r.faulted_seconds);
  if (r.faulted_seconds > 0) {
    self.times().add(mpi::TimeCat::Faulted, r.faulted_seconds);
  }
}

void DirectTarget::read(mpi::Rank& self, std::span<const fs::Extent> extents,
                        std::byte* out) {
  const double start = self.now();
  const fs::IoResult r = fs_.read(self.rank(), file_id_, extents, out);
  self.times().add(mpi::TimeCat::IO, self.now() - start - r.faulted_seconds);
  if (r.faulted_seconds > 0) {
    self.times().add(mpi::TimeCat::Faulted, r.faulted_seconds);
  }
}

std::vector<int> default_aggregators(const machine::Topology& topology,
                                     const mpi::Comm& comm,
                                     const Hints& hints) {
  if (hints.cb_node_list.empty() && hints.cb_nodes == 0) {
    // No aggregator hints: every process aggregates (the AD_sysio behaviour
    // on Catamount — no intra-node distinction, one single-threaded process
    // per core). Node-based selection applies once hints are given.
    std::vector<int> all(static_cast<std::size_t>(comm.size()));
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  // Node order: explicit list, or all nodes hosting comm members.
  std::vector<int> nodes;
  if (!hints.cb_node_list.empty()) {
    nodes = hints.cb_node_list;
  } else {
    std::vector<bool> seen(static_cast<std::size_t>(topology.num_nodes()));
    for (int local = 0; local < comm.size(); ++local) {
      const int node = topology.node_of(comm.world_rank(local));
      if (!seen[static_cast<std::size_t>(node)]) {
        seen[static_cast<std::size_t>(node)] = true;
        nodes.push_back(node);
      }
    }
    std::sort(nodes.begin(), nodes.end());
  }
  if (hints.cb_nodes > 0 &&
      static_cast<std::size_t>(hints.cb_nodes) < nodes.size()) {
    nodes.resize(static_cast<std::size_t>(hints.cb_nodes));
  }
  // One aggregator per node: the lowest comm rank hosted there.
  std::vector<int> aggregators;
  for (int node : nodes) {
    int best = -1;
    for (int world : topology.ranks_on_node(node)) {
      const int local = comm.local_rank(world);
      if (local >= 0 && (best < 0 || local < best)) {
        best = local;
      }
    }
    if (best >= 0) {
      aggregators.push_back(best);
    }
  }
  std::sort(aggregators.begin(), aggregators.end());
  aggregators.erase(std::unique(aggregators.begin(), aggregators.end()),
                    aggregators.end());
  return aggregators;
}

Ext2phOutcome ext2ph_write(mpi::Rank& self, const mpi::Comm& comm,
                           IoTarget& target, const CollRequest& request,
                           const Ext2phOptions& options) {
  Ext2phOutcome outcome;
  const Plan plan = [&] {
    mpi::SpanGuard plan_span(self, obs::SpanKind::Stage, "plan");
    return make_plan(self, comm, request, options);
  }();
  if (!plan.active) return outcome;

  const int naggs = static_cast<int>(options.aggregators.size());
  auto& p2p = self.world().p2p();
  // Whether to materialize exchange/window buffers (world property) and
  // whether this rank's outgoing payload is real.
  const bool byte_true = self.world().byte_true();
  const bool have_data = request.data != nullptr;

  int a_lo = 0;
  int a_hi = -1;
  if (!request.extents.empty()) {
    a_lo = plan.agg_of(request.extents.front().offset, naggs);
    a_hi = plan.agg_of(request.extents.back().end() - 1, naggs);
  }

  std::vector<std::byte> window_buffer;
  for (std::uint64_t t = 0; t < plan.ntimes; ++t) {
    const double cycle_begin = self.now();
    mpi::SpanGuard cycle_span(self, obs::SpanKind::Stage, "cycle",
                              /*group=*/-1, static_cast<std::int64_t>(t));
    // My pieces for each aggregator's current window, and the size vector.
    std::vector<std::uint32_t> send_sizes(static_cast<std::size_t>(plan.nranks), 0);
    std::vector<std::pair<int, std::vector<Piece>>> cycle_sends;
    for (int a = a_lo; a <= a_hi; ++a) {
      const CoveredLoc loc = plan.loc(static_cast<std::size_t>(a));
      const std::uint64_t loc_lo = loc.st;
      const std::uint64_t loc_hi = loc.end;
      if (loc_lo >= loc_hi) continue;
      const std::uint64_t win_lo = loc_lo + t * options.cb_buffer_size;
      const std::uint64_t win_hi =
          std::min(loc_hi, win_lo + options.cb_buffer_size);
      if (win_lo >= win_hi) continue;
      auto pieces = clip_stream(request.extents, plan.prefix, win_lo, win_hi);
      if (pieces.empty()) continue;
      std::uint64_t total = 0;
      for (const Piece& piece : pieces) total += piece.length;
      const int agg_rank = options.aggregators[static_cast<std::size_t>(a)];
      send_sizes[static_cast<std::size_t>(agg_rank)] =
          static_cast<std::uint32_t>(total);
      cycle_sends.emplace_back(agg_rank, std::move(pieces));
    }

    // Per-cycle coordination: the Alltoall of cycle sizes. This is the
    // synchronization the paper's collective wall is made of.
    const auto recv_sizes = mpi::alltoall(self, comm, send_sizes);

    std::vector<mpi::Request> requests;
    std::vector<std::vector<std::byte>> recv_buffers(
        static_cast<std::size_t>(plan.nranks));
    if (plan.my_agg_index >= 0) {
      for (int r = 0; r < plan.nranks; ++r) {
        const std::uint32_t n = recv_sizes[static_cast<std::size_t>(r)];
        if (n == 0) continue;
        auto& buffer = recv_buffers[static_cast<std::size_t>(r)];
        if (byte_true) buffer.resize(n);
        requests.push_back(p2p.irecv(self, comm, r,
                                     kTagData + static_cast<int>(t),
                                     byte_true ? buffer.data() : nullptr, n));
      }
    }
    std::vector<std::vector<std::byte>> send_buffers;
    send_buffers.reserve(cycle_sends.size());
    for (const auto& [agg_rank, pieces] : cycle_sends) {
      std::uint64_t total = 0;
      for (const Piece& piece : pieces) total += piece.length;
      send_buffers.emplace_back();
      auto& buffer = send_buffers.back();
      if (have_data) {
        buffer.resize(total);
        std::uint64_t pos = 0;
        for (const Piece& piece : pieces) {
          std::memcpy(buffer.data() + pos, request.data + piece.stream_pos,
                      piece.length);
          pos += piece.length;
        }
      }
      self.touch_bytes(static_cast<double>(total));  // gather cost
      requests.push_back(p2p.isend(self, comm, agg_rank,
                                   kTagData + static_cast<int>(t),
                                   have_data ? buffer.data() : nullptr, total));
    }
    p2p.waitall(self, requests);

    // File-I/O phase: the aggregator assembles and writes its window.
    if (plan.my_agg_index >= 0 &&
        plan.loc(static_cast<std::size_t>(plan.my_agg_index)).end >
            plan.loc(static_cast<std::size_t>(plan.my_agg_index)).st) {
      const std::uint64_t loc_lo =
          plan.loc(static_cast<std::size_t>(plan.my_agg_index)).st;
      const std::uint64_t loc_hi =
          plan.loc(static_cast<std::size_t>(plan.my_agg_index)).end;
      const std::uint64_t win_lo = loc_lo + t * options.cb_buffer_size;
      const std::uint64_t win_hi =
          std::min(loc_hi, win_lo + options.cb_buffer_size);
      const WindowWork work =
          gather_window_work(plan, recv_sizes, win_lo, win_hi);
      if (!work.empty()) {
        const fs::Extent span{work.lo, work.hi - work.lo};
        if (byte_true) {
          window_buffer.assign(span.length, std::byte{0});
          if (work.has_holes()) {
            target.read(self, std::span(&span, 1), window_buffer.data());
            ++outcome.rmw_reads;
          }
          for (const auto& entry : work.entries) {
            std::memcpy(window_buffer.data() + (entry.offset - work.lo),
                        recv_buffers[static_cast<std::size_t>(entry.source)]
                                .data() +
                            entry.msg_pos,
                        entry.length);
          }
          self.touch_bytes(static_cast<double>(work.total));
          target.write(self, std::span(&span, 1), window_buffer.data());
        } else {
          if (work.has_holes()) {
            target.read(self, std::span(&span, 1), nullptr);
            ++outcome.rmw_reads;
          }
          self.touch_bytes(static_cast<double>(work.total));
          target.write(self, std::span(&span, 1), nullptr);
        }
      }
    }
    ++outcome.cycles;
    if (auto* metrics = self.world().metrics()) {
      metrics->quantile("coll.cycle_s").observe(self.now() - cycle_begin);
    }
  }

  // Trailing status agreement (ROMIO reduces error codes).
  {
    mpi::SpanGuard finalize_span(self, obs::SpanKind::Stage, "finalize",
                                 /*group=*/-1,
                                 static_cast<std::int64_t>(plan.ntimes));
    mpi::allreduce_max(self, comm, 0);
  }
  return outcome;
}

Ext2phOutcome ext2ph_read(mpi::Rank& self, const mpi::Comm& comm,
                          IoTarget& target, const CollRequest& request,
                          const Ext2phOptions& options) {
  Ext2phOutcome outcome;
  const Plan plan = [&] {
    mpi::SpanGuard plan_span(self, obs::SpanKind::Stage, "plan");
    return make_plan(self, comm, request, options);
  }();
  if (!plan.active) return outcome;

  const int naggs = static_cast<int>(options.aggregators.size());
  auto& p2p = self.world().p2p();
  const bool byte_true = self.world().byte_true();
  const bool want_data = request.data != nullptr;

  int a_lo = 0;
  int a_hi = -1;
  if (!request.extents.empty()) {
    a_lo = plan.agg_of(request.extents.front().offset, naggs);
    a_hi = plan.agg_of(request.extents.back().end() - 1, naggs);
  }

  std::vector<std::byte> window_buffer;
  for (std::uint64_t t = 0; t < plan.ntimes; ++t) {
    const double cycle_begin = self.now();
    mpi::SpanGuard cycle_span(self, obs::SpanKind::Stage, "cycle",
                              /*group=*/-1, static_cast<std::int64_t>(t));
    // What I want from each aggregator's window this cycle.
    std::vector<std::uint32_t> want_sizes(static_cast<std::size_t>(plan.nranks), 0);
    std::vector<std::pair<int, std::vector<Piece>>> cycle_wants;
    for (int a = a_lo; a <= a_hi; ++a) {
      const CoveredLoc loc = plan.loc(static_cast<std::size_t>(a));
      const std::uint64_t loc_lo = loc.st;
      const std::uint64_t loc_hi = loc.end;
      if (loc_lo >= loc_hi) continue;
      const std::uint64_t win_lo = loc_lo + t * options.cb_buffer_size;
      const std::uint64_t win_hi =
          std::min(loc_hi, win_lo + options.cb_buffer_size);
      if (win_lo >= win_hi) continue;
      auto pieces = clip_stream(request.extents, plan.prefix, win_lo, win_hi);
      if (pieces.empty()) continue;
      std::uint64_t total = 0;
      for (const Piece& piece : pieces) total += piece.length;
      const int agg_rank = options.aggregators[static_cast<std::size_t>(a)];
      want_sizes[static_cast<std::size_t>(agg_rank)] =
          static_cast<std::uint32_t>(total);
      cycle_wants.emplace_back(agg_rank, std::move(pieces));
    }

    const auto asked_sizes = mpi::alltoall(self, comm, want_sizes);

    // Post my receives for the data I asked for.
    std::vector<mpi::Request> requests;
    std::vector<std::vector<std::byte>> recv_buffers;
    recv_buffers.reserve(cycle_wants.size());
    for (const auto& [agg_rank, pieces] : cycle_wants) {
      std::uint64_t total = 0;
      for (const Piece& piece : pieces) total += piece.length;
      recv_buffers.emplace_back();
      auto& buffer = recv_buffers.back();
      if (want_data) buffer.resize(total);
      requests.push_back(p2p.irecv(self, comm, agg_rank,
                                   kTagData + static_cast<int>(t),
                                   want_data ? buffer.data() : nullptr, total));
    }

    // Aggregator: read the window's covered span, slice, and send.
    std::vector<std::vector<std::byte>> reply_buffers;
    if (plan.my_agg_index >= 0 &&
        plan.loc(static_cast<std::size_t>(plan.my_agg_index)).end >
            plan.loc(static_cast<std::size_t>(plan.my_agg_index)).st) {
      const std::uint64_t loc_lo =
          plan.loc(static_cast<std::size_t>(plan.my_agg_index)).st;
      const std::uint64_t loc_hi =
          plan.loc(static_cast<std::size_t>(plan.my_agg_index)).end;
      const std::uint64_t win_lo = loc_lo + t * options.cb_buffer_size;
      const std::uint64_t win_hi =
          std::min(loc_hi, win_lo + options.cb_buffer_size);
      const WindowWork work =
          gather_window_work(plan, asked_sizes, win_lo, win_hi);
      if (!work.empty()) {
        const fs::Extent span{work.lo, work.hi - work.lo};
        window_buffer.assign(byte_true ? span.length : 0, std::byte{0});
        target.read(self, std::span(&span, 1),
                    byte_true ? window_buffer.data() : nullptr);
        // Build one reply per requester, pieces in offset order.
        std::vector<std::uint64_t> reply_size(
            static_cast<std::size_t>(plan.nranks), 0);
        for (const auto& entry : work.entries) {
          reply_size[static_cast<std::size_t>(entry.source)] += entry.length;
        }
        reply_buffers.resize(static_cast<std::size_t>(plan.nranks));
        if (byte_true) {
          for (const auto& entry : work.entries) {
            auto& reply = reply_buffers[static_cast<std::size_t>(entry.source)];
            if (reply.capacity() == 0) {
              reply.reserve(
                  reply_size[static_cast<std::size_t>(entry.source)]);
            }
            const auto* begin = window_buffer.data() + (entry.offset - work.lo);
            reply.insert(reply.end(), begin, begin + entry.length);
          }
        }
        self.touch_bytes(static_cast<double>(work.total));
        for (int r = 0; r < plan.nranks; ++r) {
          if (reply_size[static_cast<std::size_t>(r)] == 0) continue;
          requests.push_back(p2p.isend(
              self, comm, r, kTagData + static_cast<int>(t),
              byte_true ? reply_buffers[static_cast<std::size_t>(r)].data()
                        : nullptr,
              reply_size[static_cast<std::size_t>(r)]));
        }
      }
    }

    p2p.waitall(self, requests);

    // Scatter the replies into my packed stream.
    if (want_data) {
      for (std::size_t i = 0; i < cycle_wants.size(); ++i) {
        const auto& pieces = cycle_wants[i].second;
        const auto& buffer = recv_buffers[i];
        std::uint64_t pos = 0;
        for (const Piece& piece : pieces) {
          std::memcpy(request.data + piece.stream_pos, buffer.data() + pos,
                      piece.length);
          pos += piece.length;
        }
        self.touch_bytes(static_cast<double>(pos));
      }
    }
    ++outcome.cycles;
    if (auto* metrics = self.world().metrics()) {
      metrics->quantile("coll.cycle_s").observe(self.now() - cycle_begin);
    }
  }
  return outcome;
}

}  // namespace parcoll::mpiio
