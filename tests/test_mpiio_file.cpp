// FileHandle: collective open, independent I/O through views, stats, and
// the POSIX-style per-extent path.
#include <gtest/gtest.h>

#include "mpi/collectives.hpp"
#include "mpiio/file.hpp"
#include "mpiio/independent.hpp"
#include "workloads/pattern.hpp"

namespace parcoll::mpiio {
namespace {

using dtype::Datatype;

TEST(FileHandle, CollectiveOpenSharesOneFile) {
  mpi::World world(machine::MachineModel::jaguar(4));
  std::vector<int> ids(4, -1);
  world.run([&](mpi::Rank& self) {
    FileHandle file(self, self.comm_world(), "shared.dat");
    ids[self.rank()] = file.fs_id();
    file.close();
  });
  EXPECT_EQ(ids[0], ids[1]);
  EXPECT_EQ(ids[0], ids[3]);
}

TEST(FileHandle, HintsControlStriping) {
  mpi::World world(machine::MachineModel::jaguar(2));
  world.run([&](mpi::Rank& self) {
    Hints hints;
    hints.striping_factor = 8;
    hints.striping_unit = 1 << 16;
    FileHandle file(self, self.comm_world(), "striped.dat", hints);
    const auto& meta = self.world().fs().meta(file.fs_id());
    EXPECT_EQ(meta.stripe_count, 8);
    EXPECT_EQ(meta.stripe_size, 1u << 16);
    file.close();
  });
}

TEST(FileHandle, IndependentWriteReadRoundTrip) {
  mpi::World world(machine::MachineModel::jaguar(4));
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    FileHandle file(self, self.comm_world(), "indep.dat");
    const Datatype memtype = Datatype::bytes(1024);
    std::vector<std::byte> data(1024);
    const fs::Extent extent{static_cast<std::uint64_t>(self.rank()) * 1024,
                            1024};
    workloads::fill_stream(data.data(), std::span(&extent, 1), 1);
    file.write_at(extent.offset, data.data(), 1, memtype);
    mpi::barrier(self, self.comm_world());

    std::vector<std::byte> back(1024);
    // Read a neighbour's block to prove the data is shared.
    const fs::Extent other{
        static_cast<std::uint64_t>((self.rank() + 1) % 4) * 1024, 1024};
    file.read_at(other.offset, back.data(), 1, memtype);
    ok = ok && workloads::check_stream(back.data(), std::span(&other, 1), 1);
    file.close();
  });
  EXPECT_TRUE(ok);
}

TEST(FileHandle, ViewedIndependentWriteLandsInStridedPositions) {
  mpi::World world(machine::MachineModel::jaguar(2));
  bool ok = true;
  world.run([&](mpi::Rank& self) {
    FileHandle file(self, self.comm_world(), "viewed.dat");
    // Interleave ranks every 8 bytes: rank r owns bytes [16k + 8r, +8).
    const Datatype ftype = Datatype::resized(
        Datatype::hvector(1, 1, 0, Datatype::bytes(8)), 0, 16);
    file.set_view(static_cast<std::uint64_t>(self.rank()) * 8, 8, ftype);
    std::vector<std::byte> data(32);  // 4 tiles worth
    const auto extents = file.view().map(0, 32);
    workloads::fill_stream(data.data(), extents, 7);
    file.write_at(0, data.data(), 1, Datatype::bytes(32));
    mpi::barrier(self, self.comm_world());
    auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
    ok = ok && store &&
         workloads::verify_store(*store, file.fs_id(), extents, 7);
    file.close();
  });
  EXPECT_TRUE(ok);
}

TEST(FileHandle, StatsAccumulateAcrossRanksAndOps) {
  mpi::World world(machine::MachineModel::jaguar(4));
  FileStats stats;
  world.run([&](mpi::Rank& self) {
    FileHandle file(self, self.comm_world(), "stats.dat");
    std::vector<std::byte> data(256);
    file.write_at(static_cast<std::uint64_t>(self.rank()) * 256, data.data(),
                  1, Datatype::bytes(256));
    file.read_at(0, data.data(), 1, Datatype::bytes(256));
    mpi::barrier(self, self.comm_world());
    if (self.rank() == 0) stats = file.stats();
    file.close();
  });
  EXPECT_EQ(stats.independent_writes, 4u);
  EXPECT_EQ(stats.independent_reads, 4u);
  EXPECT_EQ(stats.bytes_written, 4u * 256u);
  EXPECT_EQ(stats.bytes_read, 4u * 256u);
  EXPECT_GT(stats.time[mpi::TimeCat::IO], 0.0);
}

TEST(FileHandle, SummaryMentionsCategories) {
  FileStats stats;
  stats.bytes_written = 123;
  const std::string summary = stats.summary("x.dat");
  EXPECT_NE(summary.find("sync="), std::string::npos);
  EXPECT_NE(summary.find("written=123"), std::string::npos);
}

TEST(FileHandle, DoubleCloseThrows) {
  mpi::World world(machine::MachineModel::jaguar(1));
  world.run([&](mpi::Rank& self) {
    FileHandle file(self, self.comm_world(), "close.dat");
    file.close();
    EXPECT_THROW(file.close(), std::logic_error);
  });
}

TEST(PosixIndependent, PerExtentWritesAreSlowerButCorrect) {
  // Same gappy write via batched and POSIX-style paths: identical bytes,
  // but the POSIX path takes longer (no pipelining across extents).
  const auto run = [](bool posix) {
    mpi::World world(machine::MachineModel::jaguar(1));
    double elapsed = 0;
    bool ok = false;
    world.run([&](mpi::Rank& self) {
      FileHandle file(self, self.comm_world(), "posix.dat");
      const Datatype ftype = Datatype::resized(Datatype::bytes(64), 0, 4096);
      file.set_view(0, 64, ftype);
      std::vector<std::byte> data(64 * 32);
      const auto extents = file.view().map(0, data.size());
      workloads::fill_stream(data.data(), extents, 3);
      const double t0 = self.now();
      if (posix) {
        posix_write_at(file, 0, data.data(), 1, Datatype::bytes(data.size()));
      } else {
        file.write_at(0, data.data(), 1, Datatype::bytes(data.size()));
      }
      elapsed = self.now() - t0;
      auto* store =
          dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
      ok = store && workloads::verify_store(*store, file.fs_id(), extents, 3);
      file.close();
    });
    EXPECT_TRUE(ok);
    return elapsed;
  };
  const double batched = run(false);
  const double posix = run(true);
  EXPECT_GT(posix, batched);
}

TEST(Hints, StringInterfaceRoundTrips) {
  Hints hints;
  hints.set("cb_buffer_size", "1048576");
  hints.set("cb_nodes", "16");
  hints.set("cb_node_list", "1,3,5");
  hints.set("parcoll_num_groups", "64");
  hints.set("parcoll_min_group_size", "4");
  hints.set("parcoll_view_switch", "false");
  EXPECT_EQ(hints.cb_buffer_size, 1048576u);
  EXPECT_EQ(hints.get("cb_nodes"), "16");
  EXPECT_EQ(hints.cb_node_list, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(hints.get("cb_node_list"), "1,3,5");
  EXPECT_EQ(hints.parcoll_num_groups, 64);
  EXPECT_FALSE(hints.parcoll_view_switch);
  EXPECT_THROW(hints.set("no_such_hint", "1"), std::invalid_argument);
  EXPECT_THROW(hints.get("no_such_hint"), std::invalid_argument);
}

}  // namespace
}  // namespace parcoll::mpiio
