// Deterministic fault injection and degraded-mode resilience.
//
// Three layers under test:
//  - FaultPlan itself: parsing, canonical description, and the guarantee
//    that the same seed yields the same event schedule.
//  - The empty-plan invariant: installing no plan and installing a plan
//    whose events never fire must both leave the simulation bit-for-bit
//    and timing-identical to the seed behaviour.
//  - Degraded-mode recovery: an OST outage in the middle of a collective
//    write completes with correct file bytes via timeout/retry/failover,
//    for the plain ext2ph baseline and for ParColl; a stalled aggregator
//    is re-elected by its subgroup.
#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <string>
#include <vector>

#include "core/parcoll.hpp"
#include "core/subgroup.hpp"
#include "fault/fault.hpp"
#include "fs/object_store.hpp"
#include "fs/ost.hpp"
#include "mpi/collectives.hpp"
#include "mpiio/file.hpp"
#include "workloads/pattern.hpp"

namespace parcoll {
namespace {

constexpr std::uint64_t kSalt = 0xFA;

// ---------------------------------------------------------------------------
// FaultPlan unit tests
// ---------------------------------------------------------------------------

TEST(FaultPlan, EmptyByDefault) {
  fault::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.rpc_drop_prob = 0.5;
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, ParseRoundTripsThroughDescribe) {
  const std::string spec =
      "seed=7;ost-outage=3:0.1:0.5;ost-degrade=2:0:1:4;rank-stall=5:0.2:1;"
      "rpc-drop=0.01;rpc-delay=0.05:0.01;timeout=0.02;backoff=0.005:0.1;"
      "max-retries=2;agg-stall-threshold=0.05";
  const fault::FaultPlan plan = fault::FaultPlan::parse(spec);
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.outages.size(), 1u);
  EXPECT_EQ(plan.outages[0].ost, 3);
  EXPECT_DOUBLE_EQ(plan.outages[0].begin, 0.1);
  EXPECT_DOUBLE_EQ(plan.outages[0].end, 0.5);
  ASSERT_EQ(plan.degrades.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.degrades[0].factor, 4.0);
  ASSERT_EQ(plan.stalls.size(), 1u);
  EXPECT_EQ(plan.stalls[0].rank, 5);
  EXPECT_DOUBLE_EQ(plan.rpc_drop_prob, 0.01);
  EXPECT_DOUBLE_EQ(plan.retry.timeout, 0.02);
  EXPECT_EQ(plan.retry.max_retries, 2);
  // describe() is canonical: reparsing it reproduces itself.
  const fault::FaultPlan again = fault::FaultPlan::parse(plan.describe());
  EXPECT_EQ(again.describe(), plan.describe());
}

/// Property test: describe() is an exact, canonical inverse of parse() for
/// arbitrary plans — including the silent-corruption keys. Every field is
/// drawn randomly (doubles included: describe renders shortest-exact, so
/// the round-trip must be bit-for-bit), and parse(describe(p)) == p.
TEST(FaultPlan, DescribeParseRoundTripsRandomizedPlans) {
  std::mt19937_64 rng(0xF00DF00Du);
  const auto uniform = [&](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };
  const auto count = [&](int max) {
    return std::uniform_int_distribution<int>(0, max)(rng);
  };
  for (int trial = 0; trial < 200; ++trial) {
    fault::FaultPlan plan;
    plan.seed = rng();  // full 64-bit range
    for (int i = count(3); i > 0; --i) {
      const double begin = uniform(0.0, 10.0);
      plan.outages.push_back(
          {count(71), begin, begin + uniform(0.001, 5.0)});
    }
    for (int i = count(2); i > 0; --i) {
      const double begin = uniform(0.0, 10.0);
      plan.degrades.push_back(
          {count(71), begin, begin + uniform(0.001, 5.0),
           uniform(1.5, 8.0)});
    }
    for (int i = count(2); i > 0; --i) {
      plan.stalls.push_back({count(127), uniform(0.0, 10.0),
                             uniform(0.001, 5.0)});
    }
    for (int i = count(2); i > 0; --i) {
      plan.media.push_back({count(71), uniform(0.0, 10.0)});
    }
    if (count(1) != 0) plan.rpc_drop_prob = uniform(0.001, 0.999);
    if (count(1) != 0) {
      // Delay seconds only travel with a nonzero probability: describe()
      // omits the pair entirely when the delay process is off.
      plan.rpc_delay_prob = uniform(0.001, 0.999);
      plan.rpc_delay_seconds = uniform(0.0001, 0.1);
    }
    if (count(1) != 0) plan.rpc_corrupt_prob = uniform(0.001, 0.999);
    if (count(1) != 0) plan.bb_corrupt_prob = uniform(0.001, 0.999);
    plan.agg_stall_threshold = uniform(0.001, 0.2);
    plan.retry.timeout = uniform(0.001, 0.1);
    plan.retry.backoff_base = uniform(0.0005, 0.05);
    plan.retry.backoff_max = plan.retry.backoff_base * uniform(1.0, 10.0);
    plan.retry.max_retries = count(10);

    const std::string spec = plan.describe();
    fault::FaultPlan again;
    try {
      again = fault::FaultPlan::parse(spec);
    } catch (const std::exception& error) {
      FAIL() << "trial " << trial << ": describe() produced an unparseable "
             << "spec: " << error.what() << "\n  " << spec;
    }
    EXPECT_EQ(again, plan) << "trial " << trial << "\n  " << spec;
    EXPECT_EQ(again.describe(), spec) << "trial " << trial;
  }
}

TEST(FaultPlan, CorruptionKeysParseAndValidate) {
  const fault::FaultPlan plan = fault::FaultPlan::parse(
      "seed=5;rpc-corrupt=0.25;bb-corrupt=0.1;media-corrupt=3:0.5;"
      "media-corrupt=3:1.5");
  EXPECT_DOUBLE_EQ(plan.rpc_corrupt_prob, 0.25);
  EXPECT_DOUBLE_EQ(plan.bb_corrupt_prob, 0.1);
  ASSERT_EQ(plan.media.size(), 2u);  // repeatable key
  EXPECT_EQ(plan.media[0].ost, 3);
  EXPECT_DOUBLE_EQ(plan.media[1].at, 1.5);
  EXPECT_FALSE(plan.empty());

  EXPECT_THROW(fault::FaultPlan::parse("rpc-corrupt=1.5"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("rpc-corrupt=-0.1"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("bb-corrupt=2"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("media-corrupt=1"),
               std::invalid_argument);

  // Corruption draws are seed-deterministic and stream-independent.
  const fault::FaultPlan same = fault::FaultPlan::parse(
      "seed=5;rpc-corrupt=0.25;bb-corrupt=0.1");
  int corrupted = 0;
  for (std::uint64_t draw = 0; draw < 1000; ++draw) {
    EXPECT_EQ(plan.corrupt_rpc(0, draw), same.corrupt_rpc(0, draw));
    EXPECT_EQ(plan.corrupt_bb(4, draw), same.corrupt_bb(4, draw));
    if (plan.corrupt_rpc(0, draw)) ++corrupted;
  }
  EXPECT_GT(corrupted, 1000 * 0.25 / 2);
  EXPECT_LT(corrupted, 1000 * 0.25 * 2);
  EXPECT_EQ(plan.corrupt_site(1, 2), same.corrupt_site(1, 2));
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(fault::FaultPlan::parse("nonsense"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("frobnicate=1"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("ost-outage=1:2"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("ost-outage=1:5:2"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("rpc-drop=1.5"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("rank-stall=1:0:0"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("rpc-drop=abc"), std::invalid_argument);
}

TEST(FaultPlan, WindowsQueryAsHalfOpenIntervals) {
  fault::FaultPlan plan;
  plan.outages.push_back({2, 1.0, 2.0});
  EXPECT_FALSE(plan.ost_down(2, 0.999));
  EXPECT_TRUE(plan.ost_down(2, 1.0));
  EXPECT_TRUE(plan.ost_down(2, 1.999));
  EXPECT_FALSE(plan.ost_down(2, 2.0));
  EXPECT_FALSE(plan.ost_down(1, 1.5));  // other target unaffected

  plan.degrades.push_back({4, 0.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(plan.degrade_factor(4, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(plan.degrade_factor(4, 1.5), 1.0);

  plan.stalls.push_back({1, 2.0, 0.5});
  EXPECT_DOUBLE_EQ(plan.stall_remaining(1, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(plan.stall_remaining(1, 2.25), 0.25);
  EXPECT_DOUBLE_EQ(plan.stall_remaining(1, 2.5), 0.0);
  EXPECT_DOUBLE_EQ(plan.stall_remaining(0, 2.0), 0.0);
}

TEST(FaultPlan, DropDrawsAreSeedDeterministic) {
  fault::FaultPlan a = fault::FaultPlan::parse("seed=11;rpc-drop=0.3");
  fault::FaultPlan b = fault::FaultPlan::parse("seed=11;rpc-drop=0.3");
  fault::FaultPlan c = fault::FaultPlan::parse("seed=12;rpc-drop=0.3");
  int dropped = 0;
  int differs = 0;
  for (std::uint64_t draw = 0; draw < 2000; ++draw) {
    const bool da = a.drop_rpc(0, draw);
    EXPECT_EQ(da, b.drop_rpc(0, draw));  // same seed -> same schedule
    if (da) ++dropped;
    if (da != c.drop_rpc(0, draw)) ++differs;
  }
  // The rate should be near the probability and the other seed distinct.
  EXPECT_GT(dropped, 2000 * 0.3 / 2);
  EXPECT_LT(dropped, 2000 * 0.3 * 2);
  EXPECT_GT(differs, 0);
}

TEST(FaultPlan, BackoffDoublesUpToCap) {
  fault::FaultPlan plan = fault::FaultPlan::parse("backoff=0.01:0.05");
  EXPECT_DOUBLE_EQ(plan.backoff(0), 0.01);
  EXPECT_DOUBLE_EQ(plan.backoff(1), 0.02);
  EXPECT_DOUBLE_EQ(plan.backoff(2), 0.04);
  EXPECT_DOUBLE_EQ(plan.backoff(3), 0.05);
  EXPECT_DOUBLE_EQ(plan.backoff(30), 0.05);
}

TEST(FaultCounters, AccumulateAndReportActivity) {
  fault::FaultCounters a;
  EXPECT_FALSE(a.any());
  fault::FaultCounters b;
  b.retries = 2;
  b.faulted_seconds = 0.5;
  a += b;
  a += b;
  EXPECT_TRUE(a.any());
  EXPECT_EQ(a.retries, 4u);
  EXPECT_DOUBLE_EQ(a.faulted_seconds, 1.0);

  fault::FaultState state;
  ++state.of(3).failovers;
  ++state.of(0).retries;
  EXPECT_EQ(state.of(3).failovers, 1u);
  EXPECT_EQ(state.of(7).retries, 0u);  // untouched client reads as zero
  const fault::FaultCounters total = state.total();
  EXPECT_EQ(total.failovers, 1u);
  EXPECT_EQ(total.retries, 1u);
}

// ---------------------------------------------------------------------------
// OST-level hooks
// ---------------------------------------------------------------------------

machine::StorageParams quiet_params() {
  machine::StorageParams params;
  params.jitter_frac = 0.0;
  params.slow_epoch_seconds = 0.0;
  return params;
}

TEST(OstFaults, OutageSwallowsRequestsWithoutSideEffects) {
  const auto params = quiet_params();
  fault::FaultPlan plan;
  plan.outages.push_back({0, 0.0, 1.0});
  fault::FaultState state;

  fs::OstModel ost(0, params);
  ost.set_fault(&plan, &state);
  const fs::ServeOutcome down = ost.serve(0.5, 0, 1, 0, 1000, 1000, false);
  EXPECT_FALSE(down.ok);
  EXPECT_DOUBLE_EQ(down.done, 0.5);
  EXPECT_EQ(ost.rpcs_served(), 0u);          // the OST never saw it
  EXPECT_DOUBLE_EQ(ost.busy_until(), 0.0);   // no busy time reserved

  // After the window (and under force) requests are served normally.
  EXPECT_TRUE(ost.serve(1.0, 0, 1, 0, 1000, 1000, false).ok);
  EXPECT_TRUE(ost.serve(0.5, 0, 1, 0, 1000, 1000, false, 1, true).ok);
}

TEST(OstFaults, DegradeWindowScalesServiceTime) {
  const auto params = quiet_params();
  fs::OstModel plain(0, params);
  const double base = plain.serve(0.0, 0, 1, 0, 1000, 1000, false).done;

  fault::FaultPlan plan;
  plan.degrades.push_back({0, 0.0, 10.0, 3.0});
  fault::FaultState state;
  fs::OstModel degraded(0, params);
  degraded.set_fault(&plan, &state);
  const double slow = degraded.serve(0.0, 0, 1, 0, 1000, 1000, false).done;
  EXPECT_DOUBLE_EQ(slow, 3.0 * base);
}

TEST(OstFaults, NeverFiringPlanLeavesServiceIdentical) {
  const auto params = quiet_params();
  fs::OstModel plain(0, params);
  fault::FaultPlan plan;
  plan.outages.push_back({0, 1e8, 1e9});  // scheduled far in the future
  fault::FaultState state;
  fs::OstModel hooked(0, params);
  hooked.set_fault(&plan, &state);
  for (int i = 0; i < 20; ++i) {
    const auto a = plain.serve(0.0, 0, 1, 0, 1000, 1000, true);
    const auto b = hooked.serve(0.0, 0, 1, 0, 1000, 1000, true);
    EXPECT_TRUE(b.ok);
    EXPECT_DOUBLE_EQ(a.done, b.done);
  }
}

// ---------------------------------------------------------------------------
// Aggregator re-election (pure roster logic)
// ---------------------------------------------------------------------------

TEST(Reelection, ReplacesStalledAggregatorDeterministically) {
  const mpi::Comm subcomm(/*context_id=*/99, {4, 5, 6, 7});
  fault::FaultPlan plan;
  plan.agg_stall_threshold = 0.05;
  plan.stalls.push_back({/*world rank*/ 5, 0.0, 10.0});

  int replaced = 0;
  const auto roster = core::reelect_stalled_aggregators(
      subcomm, {1, 3}, plan, /*agreed_now=*/1.0, &replaced);
  // Local rank 1 (world 5) is stalled; lowest healthy non-aggregator is
  // local 0. Local 3 (world 7) is healthy and keeps its seat.
  EXPECT_EQ(replaced, 1);
  EXPECT_EQ(roster, (std::vector<int>{0, 3}));

  // Identical inputs -> identical roster on every caller.
  const auto again = core::reelect_stalled_aggregators(
      subcomm, {1, 3}, plan, 1.0, nullptr);
  EXPECT_EQ(again, roster);

  // Once the stall has passed, the original roster is reinstated.
  const auto later = core::reelect_stalled_aggregators(
      subcomm, {1, 3}, plan, 20.0, &replaced);
  EXPECT_EQ(replaced, 0);
  EXPECT_EQ(later, (std::vector<int>{1, 3}));
}

TEST(Reelection, KeepsStalledAggregatorWhenNoHealthySubstitute) {
  const mpi::Comm subcomm(99, {0, 1});
  fault::FaultPlan plan;
  plan.stalls.push_back({0, 0.0, 10.0});
  plan.stalls.push_back({1, 0.0, 10.0});
  int replaced = 0;
  const auto roster =
      core::reelect_stalled_aggregators(subcomm, {0}, plan, 1.0, &replaced);
  EXPECT_EQ(replaced, 0);
  EXPECT_EQ(roster, (std::vector<int>{0}));
}

// ---------------------------------------------------------------------------
// End-to-end: collective write/read under faults
// ---------------------------------------------------------------------------

struct FaultRun {
  double elapsed = 0.0;
  std::vector<mpi::TimeBreakdown> times;
  bool write_verified = true;
  bool read_verified = true;
  mpiio::FileStats stats;
  fault::FaultCounters faults;
  double open_time = 0.0;
  std::vector<double> after_first_write;  // per-rank clock, first write done
  std::vector<std::vector<int>> aggregators_per_group;
};

/// Serial pattern (rank r owns a contiguous 4 KiB block), one collective
/// write (two when `two_writes`, exercising the cached-partition path)
/// then one collective read, bytes verified against the store.
FaultRun run_serial(int nranks, int groups, const fault::FaultPlan& plan,
                    bool two_writes = false, int cb_nodes = 0) {
  mpi::World world(machine::MachineModel::jaguar(nranks));
  world.set_fault(plan);
  mpiio::Hints hints;
  hints.parcoll_num_groups = groups;
  hints.parcoll_min_group_size = 2;
  hints.cb_nodes = cb_nodes;
  hints.cb_buffer_size = 1024;  // several exchange cycles per call
  FaultRun result;
  result.after_first_write.resize(static_cast<std::size_t>(nranks));

  world.run([&](mpi::Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "fault.dat", hints);
    if (self.rank() == 0) {
      result.open_time = self.now();
    }
    const std::uint64_t bytes = 4096;
    file.set_view(static_cast<std::uint64_t>(self.rank()) * bytes, 1,
                  dtype::Datatype::bytes(bytes));
    const dtype::Datatype memtype = dtype::Datatype::bytes(bytes);
    const auto extents = file.view().map(0, bytes);
    if (groups != 0) {
      const auto decision = core::plan_decision(file, 0, 1, memtype);
      if (self.rank() == 0) {
        result.aggregators_per_group = decision.aggregators_per_group;
      }
    }

    std::vector<std::byte> buffer(bytes);
    workloads::fill_buffer_for_extents(buffer.data(), memtype, 1, extents,
                                       kSalt);
    core::write_at_all(file, 0, buffer.data(), 1, memtype);
    result.after_first_write[static_cast<std::size_t>(self.rank())] =
        self.now();
    if (two_writes) {
      // Same data to the same offsets: the second call reuses the cached
      // partition, so its first collective is the degraded-mode agreement.
      core::write_at_all(file, 0, buffer.data(), 1, memtype);
    }
    mpi::barrier(self, self.comm_world());

    auto* store = dynamic_cast<fs::MemoryStore*>(&self.world().fs().store());
    result.write_verified =
        result.write_verified && store != nullptr &&
        workloads::verify_store(*store, file.fs_id(), extents, kSalt);

    std::vector<std::byte> back(bytes);
    core::read_at_all(file, 0, back.data(), 1, memtype);
    result.read_verified =
        result.read_verified &&
        workloads::check_buffer_for_extents(back.data(), memtype, 1, extents,
                                            kSalt);
    mpi::barrier(self, self.comm_world());
    if (self.rank() == 0) result.stats = file.stats();
    file.close();
  });
  result.elapsed = world.elapsed();
  result.times = world.rank_times();
  result.faults = world.fault_state().total();
  return result;
}

void expect_identical(const FaultRun& a, const FaultRun& b) {
  EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
  ASSERT_EQ(a.times.size(), b.times.size());
  for (std::size_t r = 0; r < a.times.size(); ++r) {
    for (std::size_t c = 0; c < mpi::kNumTimeCats; ++c) {
      EXPECT_DOUBLE_EQ(a.times[r].seconds[c], b.times[r].seconds[c])
          << "rank " << r << " cat " << c;
    }
  }
}

TEST(FaultFreePath, EmptyPlanIsNeverInstalled) {
  mpi::World world(machine::MachineModel::jaguar(4));
  world.set_fault(fault::FaultPlan{});
  EXPECT_EQ(world.fault_plan(), nullptr);
}

/// The golden-seed equivalence demanded by the fault-model contract: a run
/// with no plan, and a run with a plan whose every event lies outside the
/// simulated time range, produce identical elapsed time and identical
/// per-rank breakdowns — for the baseline and for ParColl.
TEST(FaultFreePath, NeverFiringPlanMatchesSeedTimings) {
  fault::FaultPlan dormant;
  dormant.outages.push_back({0, 1e8, 1e9});
  dormant.degrades.push_back({1, 1e8, 1e9, 5.0});
  // No rank stalls on purpose: stalls gate the re-election reduction, and
  // this test asserts the *timing-identical* guarantee of the plain hooks.
  for (int groups : {0, 2}) {
    const FaultRun seed = run_serial(8, groups, fault::FaultPlan{});
    const FaultRun hooked = run_serial(8, groups, dormant);
    expect_identical(seed, hooked);
    EXPECT_FALSE(hooked.faults.any());
    EXPECT_EQ(hooked.stats.fault_retries, 0u);
    EXPECT_DOUBLE_EQ(
        hooked.times[0].seconds[static_cast<std::size_t>(
            mpi::TimeCat::Faulted)],
        0.0);
  }
}

/// A single-OST outage across the whole write window: the serial pattern
/// stores everything on stripe 0 (OST 0), so every data RPC initially hits
/// the dead target. The write must complete with correct bytes through
/// retry and failover, for ext2ph (groups=0) and ParColl (groups=2).
TEST(FaultRecovery, SingleOstOutageMidWriteCompletesCorrectly) {
  fault::FaultPlan plan = fault::FaultPlan::parse(
      "seed=3;ost-outage=0:0:0.5;timeout=0.002;backoff=0.001:0.004;"
      "max-retries=1");
  for (int groups : {0, 2}) {
    const FaultRun run = run_serial(8, groups, plan);
    EXPECT_TRUE(run.write_verified) << "groups=" << groups;
    EXPECT_TRUE(run.read_verified) << "groups=" << groups;
    EXPECT_GT(run.faults.retries, 0u) << "groups=" << groups;
    EXPECT_GT(run.faults.failovers, 0u) << "groups=" << groups;
    EXPECT_GT(run.faults.faulted_seconds, 0.0) << "groups=" << groups;
    // The recovery shows up in the file's close-time summary too.
    EXPECT_EQ(run.stats.fault_retries, run.faults.retries);
    EXPECT_EQ(run.stats.fault_failovers, run.faults.failovers);
  }
}

TEST(FaultRecovery, DegradedRunsAreReproducible) {
  fault::FaultPlan plan = fault::FaultPlan::parse(
      "seed=9;ost-outage=0:0:0.4;rpc-drop=0.05;timeout=0.002;"
      "backoff=0.001:0.004;max-retries=2");
  const FaultRun a = run_serial(8, 2, plan);
  const FaultRun b = run_serial(8, 2, plan);
  expect_identical(a, b);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.failovers, b.faults.failovers);
  EXPECT_EQ(a.faults.drops, b.faults.drops);
  EXPECT_TRUE(a.write_verified);
  EXPECT_TRUE(b.write_verified);
}

TEST(FaultRecovery, RankStallIsChargedToFaultedTime) {
  fault::FaultPlan plan;
  plan.stalls.push_back({3, 0.0, 0.25});
  const FaultRun run = run_serial(8, 0, plan);
  EXPECT_TRUE(run.write_verified);
  EXPECT_EQ(run.faults.stalls, 1u);
  EXPECT_DOUBLE_EQ(
      run.times[3].seconds[static_cast<std::size_t>(mpi::TimeCat::Faulted)],
      0.25);
}

/// A ParColl subgroup re-elects an aggregator stalled past the threshold.
/// Staging: with persistent groups, the second write's first collective is
/// the degraded-mode time agreement itself, so a stall scheduled exactly
/// at the aggregator's clock after the first write fires there — the
/// agreed time lands inside the stall window with nearly the full
/// duration remaining, and the subgroup elects a substitute. The stall
/// time is calibrated from an identically-timed run whose only stall is
/// scheduled far beyond the simulated range (the simulator is
/// deterministic, so both runs agree on every clock up to that point).
TEST(FaultRecovery, StalledAggregatorIsReelected) {
  fault::FaultPlan dormant;
  dormant.agg_stall_threshold = 0.01;
  dormant.stalls.push_back({0, 1e9, 1.0});  // never fires; enables agreement
  // cb_nodes=2: one aggregator node per group, so each subgroup has
  // healthy non-aggregator members available as substitutes. (With the
  // all-aggregate default there is nobody to re-elect.)
  const FaultRun calibration =
      run_serial(8, 2, dormant, /*two_writes=*/true, /*cb_nodes=*/2);
  EXPECT_EQ(calibration.faults.reelections, 0u);
  EXPECT_EQ(calibration.faults.stalls, 0u);
  ASSERT_FALSE(calibration.aggregators_per_group.empty());
  ASSERT_FALSE(calibration.aggregators_per_group[0].empty());
  const int aggregator = calibration.aggregators_per_group[0][0];

  fault::FaultPlan plan;
  plan.agg_stall_threshold = 0.01;
  plan.stalls.push_back(
      {aggregator,
       calibration.after_first_write[static_cast<std::size_t>(aggregator)],
       /*duration=*/2.0});

  const FaultRun run =
      run_serial(8, 2, plan, /*two_writes=*/true, /*cb_nodes=*/2);
  EXPECT_TRUE(run.write_verified);
  EXPECT_TRUE(run.read_verified);
  EXPECT_GT(run.faults.reelections, 0u);
  EXPECT_EQ(run.faults.stalls, 1u);
  EXPECT_EQ(run.stats.fault_reelections, run.faults.reelections);
}

// ---------------------------------------------------------------------------
// Hint validation
// ---------------------------------------------------------------------------

TEST(HintValidation, StringInterfaceRejectsImpossibleValues) {
  mpiio::Hints hints;
  EXPECT_THROW(hints.set("cb_buffer_size", "0"), std::invalid_argument);
  EXPECT_THROW(hints.set("parcoll_num_groups", "0"), std::invalid_argument);
  EXPECT_THROW(hints.set("parcoll_num_groups", "-3"), std::invalid_argument);
  EXPECT_THROW(hints.set("parcoll_min_group_size", "0"),
               std::invalid_argument);
  hints.set("parcoll_num_groups", "auto");
  EXPECT_EQ(hints.parcoll_num_groups, -1);
  hints.set("parcoll_num_groups", "4");
  EXPECT_EQ(hints.parcoll_num_groups, 4);
}

TEST(HintValidation, ValidateChecksAgainstCommunicatorSize) {
  mpiio::Hints hints;
  hints.parcoll_num_groups = 16;
  EXPECT_THROW(hints.validate(/*comm_size=*/8), std::invalid_argument);
  EXPECT_NO_THROW(hints.validate(16));
  hints.parcoll_num_groups = -1;  // auto is always acceptable
  EXPECT_NO_THROW(hints.validate(2));
  hints.cb_buffer_size = 0;
  EXPECT_THROW(hints.validate(8), std::invalid_argument);
}

TEST(HintValidation, OpenRejectsGroupCountBeyondCommSize) {
  mpi::World world(machine::MachineModel::jaguar(4));
  mpiio::Hints hints;
  hints.parcoll_num_groups = 64;  // 4 ranks cannot host 64 groups
  bool threw = false;
  world.run([&](mpi::Rank& self) {
    try {
      mpiio::FileHandle file(self, self.comm_world(), "bad.dat", hints);
      file.close();
    } catch (const std::invalid_argument&) {
      threw = true;
      // All ranks throw identically, so nobody is left in the barrier.
    }
  });
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace parcoll
