// Execution tracing: interval capture, CSV export, Gantt rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "core/parcoll.hpp"
#include "mpi/collectives.hpp"
#include "mpi/trace.hpp"
#include "mpiio/file.hpp"

namespace parcoll::mpi {
namespace {

TEST(Trace, RecordsBusyIntervals) {
  World world(machine::MachineModel::jaguar(2));
  auto& tracer = world.enable_tracing();
  world.run([&](Rank& self) {
    self.busy(TimeCat::Compute, 0.5);
    if (self.rank() == 1) self.busy(TimeCat::IO, 0.25);
  });
  ASSERT_EQ(tracer.events().size(), 3u);
  const auto& first = tracer.events()[0];
  EXPECT_EQ(first.cat, TimeCat::Compute);
  EXPECT_DOUBLE_EQ(first.begin, 0.0);
  EXPECT_DOUBLE_EQ(first.end, 0.5);
  const auto& io = tracer.events()[2];
  EXPECT_EQ(io.rank, 1);
  EXPECT_EQ(io.cat, TimeCat::IO);
  EXPECT_DOUBLE_EQ(io.begin, 0.5);
  EXPECT_DOUBLE_EQ(io.end, 0.75);
}

TEST(Trace, CapturesCollectiveWaits) {
  World world(machine::MachineModel::jaguar(4));
  auto& tracer = world.enable_tracing();
  world.run([&](Rank& self) {
    if (self.rank() == 3) self.busy(TimeCat::Compute, 1.0);
    barrier(self, self.comm_world());
  });
  // Ranks 0..2 each have a ~1 s Sync interval ending at the barrier.
  int syncs = 0;
  for (const auto& event : tracer.events()) {
    if (event.cat == TimeCat::Sync && event.end - event.begin > 0.9) {
      ++syncs;
    }
  }
  EXPECT_EQ(syncs, 3);
}

TEST(Trace, ZeroLengthIntervalsAreDropped) {
  Tracer tracer;
  tracer.record(0, TimeCat::Sync, 1.0, 1.0);
  tracer.record(0, TimeCat::Sync, 1.0, 0.5);
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Trace, CsvHasHeaderAndRows) {
  Tracer tracer;
  tracer.record(2, TimeCat::IO, 0.25, 0.75);
  std::ostringstream os;
  tracer.write_csv(os);
  EXPECT_EQ(os.str(), "rank,category,begin,end\n2,io,0.25,0.75\n");
}

TEST(Trace, GanttShowsDominantCategoryPerBin) {
  Tracer tracer;
  tracer.record(0, TimeCat::Compute, 0.0, 1.0);
  tracer.record(0, TimeCat::Sync, 1.0, 2.0);
  tracer.record(1, TimeCat::IO, 0.0, 2.0);
  const std::string chart = tracer.gantt(/*width=*/4, /*max_ranks=*/4);
  EXPECT_NE(chart.find("cc"), std::string::npos);   // rank 0 first half
  EXPECT_NE(chart.find("SS"), std::string::npos);   // rank 0 second half
  EXPECT_NE(chart.find("IIII"), std::string::npos); // rank 1 throughout
}

TEST(Trace, GanttTruncatesRanksAndHandlesEmpty) {
  Tracer tracer;
  EXPECT_NE(tracer.gantt().find("no trace events"), std::string::npos);
  for (int r = 0; r < 8; ++r) {
    tracer.record(r, TimeCat::Compute, 0, 1);
  }
  const std::string chart = tracer.gantt(10, /*max_ranks=*/4);
  EXPECT_NE(chart.find("+4 more ranks"), std::string::npos);
}

TEST(Trace, EndToEndCollectiveWriteProducesAllCategories) {
  World world(machine::MachineModel::jaguar(8));
  auto& tracer = world.enable_tracing();
  world.run([&](Rank& self) {
    mpiio::FileHandle file(self, self.comm_world(), "trace.dat");
    std::vector<std::byte> data(4096);
    core::write_at_all(file, static_cast<std::uint64_t>(self.rank()) * 4096,
                       data.data(), 1, dtype::Datatype::bytes(4096));
    file.close();
  });
  bool has[kNumTimeCats] = {};
  for (const auto& event : tracer.events()) {
    has[static_cast<std::size_t>(event.cat)] = true;
  }
  EXPECT_TRUE(has[static_cast<std::size_t>(TimeCat::Compute)]);
  EXPECT_TRUE(has[static_cast<std::size_t>(TimeCat::P2P)]);
  EXPECT_TRUE(has[static_cast<std::size_t>(TimeCat::Sync)]);
  EXPECT_TRUE(has[static_cast<std::size_t>(TimeCat::IO)]);
}

}  // namespace
}  // namespace parcoll::mpi
