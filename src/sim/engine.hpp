// Discrete-event simulation engine.
//
// The engine owns a virtual clock and a time-ordered event queue. Simulated
// processes are fibers (sim/fiber.hpp) that run ordinary blocking code and
// interact with the engine through sleep()/suspend(); resources such as
// network links and storage servers are modeled analytically by the layers
// above (they reserve busy time and put the caller to sleep until the
// reservation completes), so the engine itself stays tiny.
//
// Determinism: events with equal timestamps are ordered by a monotone
// sequence number, so a given program produces an identical schedule on
// every run. A SchedulePolicy (sim/schedule.hpp) can replace that default
// tie-break to explore other interleavings; every policy is itself
// deterministic and replayable from a compact token.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/schedule.hpp"

namespace parcoll::sim {

/// Identifier of a simulated process (dense, starting at 0).
using ProcId = int;
inline constexpr ProcId kNoProc = -1;

/// Thrown by Engine::run when no event is pending but processes are still
/// blocked — i.e. the simulated program deadlocked. The message lists each
/// blocked process with the reason string it passed to suspend(), plus the
/// engine's schedule token, so the failing interleaving can be replayed
/// verbatim (e.g. parcoll_sim --schedule-replay <token>).
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(std::string what) : std::runtime_error(std::move(what)) {}
};

class Engine {
 public:
  Engine() = default;

  /// Create a process whose body starts executing at the current virtual
  /// time (time 0 if called before run()). May be called from inside a
  /// running process to spawn dynamically.
  ProcId spawn(std::function<void()> body,
               std::size_t stack_bytes = Fiber::kDefaultStackBytes);

  /// Run events until every spawned process has finished.
  /// Throws DeadlockError if progress stops with processes still blocked.
  void run();

  /// Current virtual time, seconds.
  [[nodiscard]] double now() const { return now_; }

  /// Stable address of the clock, for observers recording timestamps
  /// without holding an Engine reference (e.g. the tracer).
  [[nodiscard]] const double* now_address() const { return &now_; }

  /// The process currently executing, or kNoProc from scheduler context.
  [[nodiscard]] ProcId current() const { return current_; }

  /// Number of processes that have been spawned but not yet finished.
  [[nodiscard]] std::size_t live_processes() const { return live_; }

  // --- Calls below are only valid from inside a process fiber. ---

  /// Advance this process's virtual time by `seconds` (>= 0).
  void sleep(double seconds);

  /// Sleep until absolute virtual time `t` (no-op if t <= now()).
  void sleep_until(double t);

  /// Block until another process (or event) calls wake() on us.
  /// `why` is reported in the deadlock message if we never wake.
  void suspend(const char* why);

  // --- Calls below are valid from anywhere. ---

  /// Make a blocked process runnable again at virtual time `t` (>= now).
  /// It is an error to wake a process that is not suspended.
  void wake_at(double t, ProcId pid);

  /// Make a blocked process runnable at the current virtual time.
  void wake(ProcId pid) { wake_at(now_, pid); }

  /// Run `fn` on the scheduler context at virtual time `t` (>= now).
  void post(double t, std::function<void()> fn);

  /// Monotone counter; used by models that need a deterministic
  /// per-engine sequence (e.g. jitter streams).
  std::uint64_t next_stream_seq() { return stream_seq_++; }

  // --- Schedule exploration -----------------------------------------------

  /// Replace the tie-break policy (call before run()). The default Program
  /// policy keeps the engine on the historical fast path: equal-time events
  /// run in push order and no choice points are recorded.
  void set_schedule(SchedulePolicy policy);
  [[nodiscard]] const SchedulePolicy& schedule_policy() const {
    return policy_;
  }

  /// The decisions taken at choice points so far (empty under Program).
  [[nodiscard]] const std::vector<ScheduleChoice>& choice_log() const {
    return choice_log_;
  }

  /// Replayable token of the schedule this engine is executing.
  [[nodiscard]] std::string schedule_token() const { return policy_.token(); }

 private:
  enum class ProcState { Runnable, Running, Blocked, Finished };

  struct Process {
    std::unique_ptr<Fiber> fiber;
    ProcState state = ProcState::Runnable;
    std::string block_reason;
  };

  struct Event {
    double time;
    std::uint64_t seq;
    ProcId pid;                    // kNoProc => callback event
    std::function<void()> callback;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // min-heap: earlier seq first
    }
  };

  void schedule_resume(double t, ProcId pid);
  void resume_process(ProcId pid);
  /// Pop the next event to run, consulting the schedule policy when
  /// several events are tied at the minimal timestamp.
  Event pop_next();

  std::vector<Process> procs_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  double now_ = 0.0;
  std::uint64_t event_seq_ = 0;
  std::uint64_t stream_seq_ = 0;
  ProcId current_ = kNoProc;
  std::size_t live_ = 0;
  SchedulePolicy policy_;
  std::vector<ScheduleChoice> choice_log_;
};

/// Condition-variable analogue for simulated processes: a FIFO of blocked
/// process ids. Wait/notify are instantaneous in virtual time.
class WaitQueue {
 public:
  /// Suspend the calling process until notified.
  void wait(Engine& engine, const char* why);

  /// Wake the oldest waiter, if any. Returns true if one was woken.
  bool notify_one(Engine& engine);

  /// Wake all waiters.
  void notify_all(Engine& engine);

  [[nodiscard]] bool empty() const { return waiters_.empty(); }
  [[nodiscard]] std::size_t size() const { return waiters_.size(); }

 private:
  std::vector<ProcId> waiters_;
};

}  // namespace parcoll::sim
