// Deterministic verification patterns.
//
// Correctness of the collective protocols is checked end to end: every
// byte of the file must equal a pure function of its absolute file offset.
// Writers fill their buffers so that the packed stream carries the pattern
// of the extents it will land on; afterwards the MemoryStore is audited.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dtype/datatype.hpp"
#include "fs/object_store.hpp"
#include "fs/stripe.hpp"

namespace parcoll::workloads {

/// The expected byte at absolute file offset `position`.
[[nodiscard]] std::byte pattern_byte(std::uint64_t salt, std::uint64_t position);

/// Fill `stream` with the pattern of `extents` walked in order (the packed
/// representation of a request covering those extents).
void fill_stream(std::byte* stream, std::span<const fs::Extent> extents,
                 std::uint64_t salt);

/// True if `stream` carries exactly the pattern of `extents`.
[[nodiscard]] bool check_stream(const std::byte* stream,
                                std::span<const fs::Extent> extents,
                                std::uint64_t salt);

/// Fill a user buffer laid out as `count` x `memtype` so that packing it
/// yields fill_stream(extents). Requires count * memtype.size() == total
/// extent length.
void fill_buffer_for_extents(void* buffer, const dtype::Datatype& memtype,
                             std::uint64_t count,
                             std::span<const fs::Extent> extents,
                             std::uint64_t salt);

/// Check a user buffer (inverse of fill_buffer_for_extents).
[[nodiscard]] bool check_buffer_for_extents(const void* buffer,
                                            const dtype::Datatype& memtype,
                                            std::uint64_t count,
                                            std::span<const fs::Extent> extents,
                                            std::uint64_t salt);

/// Audit the stored file bytes over `extents` against the pattern.
[[nodiscard]] bool verify_store(const fs::MemoryStore& store, int file_id,
                                std::span<const fs::Extent> extents,
                                std::uint64_t salt);

}  // namespace parcoll::workloads
