// h5lite — a minimal parallel HDF5-like container on top of the MPI-IO
// layer.
//
// The paper's Flash I/O benchmark "is written through in the HDF5 data
// format. MPI-IO is used internally in the HDF5 library." This layer
// reproduces the parts of that stack that shape I/O behaviour:
//
//  * a self-describing file: superblock + a metadata region holding the
//    dataset table (names, shapes, element sizes, data offsets) and
//    attributes,
//  * contiguous dataset allocation in the data region,
//  * collective dataset writes/reads: each rank supplies a selection
//    (a datatype over the dataset's element space) and the transfer goes
//    through the collective engine — plain ext2ph or ParColl, per hints,
//  * serialized metadata updates: dataset creation and attribute writes
//    are performed by rank 0 as small independent writes plus a barrier,
//    the HDF5-metadata overhead that real Flash I/O pays on top of its
//    bulk data.
//
// The on-disk metadata encoding is a simple deterministic byte format
// (h5lite is self-contained; no external HDF5 needed), re-parsed on open.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/parcoll.hpp"
#include "dtype/datatype.hpp"
#include "mpiio/file.hpp"

namespace parcoll::h5 {

struct DatasetInfo {
  std::string name;
  std::vector<std::uint64_t> dims;
  std::uint64_t elem_size = 0;
  std::uint64_t data_offset = 0;  // absolute file offset

  [[nodiscard]] std::uint64_t elements() const {
    std::uint64_t n = 1;
    for (std::uint64_t d : dims) n *= d;
    return n;
  }
  [[nodiscard]] std::uint64_t bytes() const { return elements() * elem_size; }
};

/// One rank's handle to a collectively opened h5lite file.
class H5File {
 public:
  /// Collective create (truncates any previous content's metadata).
  static H5File create(mpi::Rank& self, const mpi::Comm& comm,
                       const std::string& name,
                       const mpiio::Hints& hints = {});

  /// Collective open of an existing h5lite file (reads the metadata).
  static H5File open(mpi::Rank& self, const mpi::Comm& comm,
                     const std::string& name,
                     const mpiio::Hints& hints = {});

  /// Collective: allocate a dataset of `dims` elements of `elem_size`
  /// bytes. Rank 0 persists the updated metadata. Returns its info.
  const DatasetInfo& create_dataset(const std::string& name,
                                    std::vector<std::uint64_t> dims,
                                    std::uint64_t elem_size);

  [[nodiscard]] bool has_dataset(const std::string& name) const;
  [[nodiscard]] const DatasetInfo& dataset(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> dataset_names() const;

  /// Collective write: each rank contributes the elements selected by
  /// `selection` (a datatype over the dataset's element space, e.g. a
  /// subarray or darray with element size elem_size). `memtype` describes
  /// the rank's memory layout of those elements.
  void write_dataset(const std::string& name, const dtype::Datatype& selection,
                     const void* buffer, std::uint64_t count,
                     const dtype::Datatype& memtype);

  /// Collective read counterpart.
  void read_dataset(const std::string& name, const dtype::Datatype& selection,
                    void* buffer, std::uint64_t count,
                    const dtype::Datatype& memtype);

  /// Collective: attach a small binary attribute to the file (rank 0
  /// persists it; values are limited by the metadata region).
  void write_attribute(const std::string& key,
                       const std::vector<std::byte>& value);
  [[nodiscard]] std::vector<std::byte> attribute(const std::string& key) const;
  [[nodiscard]] bool has_attribute(const std::string& key) const;

  /// Collective close: final metadata flush + barrier. The underlying
  /// file statistics (the paper's close summary) are available before.
  void close();

  [[nodiscard]] mpiio::FileHandle& raw() { return *file_; }

  static constexpr std::uint64_t kMetadataBytes = 1 << 20;  // 1 MiB region
  static constexpr std::uint64_t kMagic = 0x48354C4954452131ull;  // "H5LITE!1"

 private:
  struct Meta {
    std::map<std::string, DatasetInfo> datasets;
    std::map<std::string, std::vector<std::byte>> attributes;
    std::uint64_t next_data_offset = kMetadataBytes;
  };

  H5File(mpi::Rank& self, const mpi::Comm& comm, const std::string& name,
         const mpiio::Hints& hints, bool create_new);

  /// Validate and install a dataset selection as the file view.
  void apply_selection(const DatasetInfo& info,
                       const dtype::Datatype& selection);

  /// Rank 0 serializes and writes the metadata region; everyone barriers.
  void flush_metadata();
  void load_metadata();
  static std::vector<std::byte> encode(const Meta& meta);
  static Meta decode(const std::vector<std::byte>& bytes);

  mpi::Rank* self_ = nullptr;
  std::unique_ptr<mpiio::FileHandle> file_;
  std::shared_ptr<Meta> meta_;  // comm-wide shared
  bool open_ = false;
};

}  // namespace parcoll::h5
