file(REMOVE_RECURSE
  "CMakeFiles/abl_adaptive_groups.dir/abl_adaptive_groups.cpp.o"
  "CMakeFiles/abl_adaptive_groups.dir/abl_adaptive_groups.cpp.o.d"
  "abl_adaptive_groups"
  "abl_adaptive_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_adaptive_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
