#include "core/subgroup.hpp"

#include <stdexcept>

#include "core/aggregator_dist.hpp"
#include "mpi/collectives.hpp"
#include "mpiio/ext2ph.hpp"

namespace parcoll::core {

SubgroupPlan form_subgroups(
    mpi::Rank& self, const mpi::Comm& comm,
    const std::shared_ptr<const std::vector<RankAccess>>& accesses,
    const mpiio::Hints& hints) {
  const ParcollSettings settings = ParcollSettings::from(hints);
  const int me = comm.local_rank(self.rank());
  const auto& topology = self.world().model().topology;

  SubgroupPlan plan;
  // One member computes the partition and the aggregator rosters; every
  // member shares the result. It is a deterministic function of
  // collective-identical inputs, so this only removes the P-1 redundant
  // computations (and their P-sized private copies).
  plan.global = mpi::shared_once<SharedGroupInfo>(self, comm, [&] {
    SharedGroupInfo info;
    info.fa = partition_file_areas(*accesses, settings.num_groups,
                                   settings.min_group_size,
                                   settings.view_switch);
    if (info.fa.mode == PartitionMode::SingleGroup) {
      info.aggs_per_group = {
          mpiio::default_aggregators(topology, comm, hints)};
    } else if (hints.cb_node_list.empty() && hints.cb_nodes == 0) {
      // No aggregator hints: like the baseline default, every process
      // aggregates — here, within its own subgroup.
      info.aggs_per_group.assign(static_cast<std::size_t>(info.fa.num_groups),
                                 {});
      for (int local = 0; local < comm.size(); ++local) {
        info.aggs_per_group[static_cast<std::size_t>(
                                info.fa.group_of_rank[static_cast<std::size_t>(
                                    local)])]
            .push_back(local);
      }
    } else {
      // Aggregator hints given: re-distribute the node list over subgroups
      // with the paper's Fig. 5 algorithm.
      const std::vector<int> nodes = aggregator_node_list(
          topology, comm, hints.cb_node_list, hints.cb_nodes);
      info.aggs_per_group = distribute_aggregators(
          topology, comm, nodes, info.fa.group_of_rank, info.fa.num_groups);
    }
    return info;
  });
  const FileAreaPlan& fa = plan.global->fa;

  if (fa.mode == PartitionMode::SingleGroup) {
    plan.subcomm = comm;
    plan.my_group = 0;
    plan.sub_aggregators = plan.global->aggs_per_group[0];
    return plan;
  }

  plan.my_group = fa.group_of_rank[static_cast<std::size_t>(me)];
  // The split is itself a (cheap, one-shot) global collective — ParColl
  // reduces synchronization, it does not eliminate the setup exchange.
  plan.subcomm = mpi::comm_split(self, comm, plan.my_group, me);

  // Convert my group's aggregators to subcomm-local ranks.
  for (int local :
       plan.global->aggs_per_group[static_cast<std::size_t>(plan.my_group)]) {
    const int sub_local = plan.subcomm.local_rank(comm.world_rank(local));
    if (sub_local < 0) {
      throw std::logic_error("form_subgroups: aggregator not in subgroup");
    }
    plan.sub_aggregators.push_back(sub_local);
  }
  std::sort(plan.sub_aggregators.begin(), plan.sub_aggregators.end());
  return plan;
}

std::vector<int> reelect_stalled_aggregators(
    const mpi::Comm& subcomm, const std::vector<int>& sub_aggregators,
    const fault::FaultPlan& plan, double agreed_now, int* replaced) {
  if (replaced != nullptr) {
    *replaced = 0;
  }
  auto stalled = [&](int sub_local) {
    return plan.stall_remaining(subcomm.world_rank(sub_local), agreed_now) >
           plan.agg_stall_threshold;
  };
  std::vector<int> roster = sub_aggregators;
  std::vector<char> is_agg(static_cast<std::size_t>(subcomm.size()), 0);
  for (int agg : roster) {
    is_agg[static_cast<std::size_t>(agg)] = 1;
  }
  for (int& agg : roster) {
    if (!stalled(agg)) {
      continue;
    }
    // Lowest healthy non-aggregator local rank substitutes — the same
    // deterministic choice on every member of the subgroup.
    for (int candidate = 0; candidate < subcomm.size(); ++candidate) {
      if (is_agg[static_cast<std::size_t>(candidate)] || stalled(candidate)) {
        continue;
      }
      is_agg[static_cast<std::size_t>(agg)] = 0;
      is_agg[static_cast<std::size_t>(candidate)] = 1;
      agg = candidate;
      if (replaced != nullptr) {
        ++*replaced;
      }
      break;
    }
  }
  std::sort(roster.begin(), roster.end());
  return roster;
}

}  // namespace parcoll::core
