// Quickstart: 16 simulated ranks collectively write a shared file with
// ParColl, then read it back and verify.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/parcoll.hpp"
#include "mpi/collectives.hpp"
#include "mpi/runtime.hpp"
#include "mpiio/file.hpp"

int main() {
  using namespace parcoll;

  // A Jaguar-like simulated machine: 16 ranks on 8 dual-core nodes, a
  // Lustre-like file system, byte-true storage (the default) so we can
  // verify what lands on disk.
  mpi::World world(machine::MachineModel::jaguar(16));

  // MPI-IO hints: ask ParColl for 4 subgroups of at least 4 ranks.
  mpiio::Hints hints;
  hints.set("parcoll_num_groups", "4");
  hints.set("parcoll_min_group_size", "4");

  bool ok = true;
  world.run([&](mpi::Rank& self) {
    // Collective open, like MPI_File_open on MPI_COMM_WORLD.
    mpiio::FileHandle file(self, self.comm_world(), "quickstart.dat", hints);

    // Each rank owns a contiguous 64 KiB block (IOR-style layout).
    constexpr std::uint64_t kBlock = 64 * 1024;
    std::vector<unsigned char> data(kBlock);
    std::iota(data.begin(), data.end(),
              static_cast<unsigned char>(self.rank()));

    // Partitioned collective write through the (default, byte) view.
    const auto outcome = core::write_at_all(
        file, self.rank() * kBlock, data.data(), 1,
        dtype::Datatype::bytes(kBlock));
    if (self.rank() == 0) {
      std::printf("write: mode=%s groups=%d cycles=%llu\n",
                  core::to_string(outcome.mode), outcome.num_groups,
                  static_cast<unsigned long long>(outcome.cycles));
    }
    mpi::barrier(self, self.comm_world());

    // Read a neighbour's block back collectively and check it.
    const int neighbour = (self.rank() + 1) % self.size();
    std::vector<unsigned char> back(kBlock);
    core::read_at_all(file, neighbour * kBlock, back.data(), 1,
                      dtype::Datatype::bytes(kBlock));
    for (std::size_t i = 0; i < back.size(); ++i) {
      if (back[i] != static_cast<unsigned char>(neighbour + i)) {
        ok = false;
        break;
      }
    }

    // The paper's close-time summary.
    if (self.rank() == 0) {
      std::printf("%s\n", file.stats().summary(file.name()).c_str());
    }
    file.close();
  });

  std::printf("verification: %s\n", ok ? "PASSED" : "FAILED");
  std::printf("virtual time: %.6f s\n", world.elapsed());
  return ok ? 0 : 1;
}
