// Deterministic fault injection for the simulated Lustre/MPI-IO stack.
//
// A FaultPlan is a seeded, fully reproducible schedule of degraded-mode
// events — OST outage and degradation windows, per-RPC drop/delay
// probabilities, and rank compute stalls. Every probabilistic decision is a
// pure hash of (seed, stream identifiers, draw counter), so a given plan
// produces the identical event sequence on every run, and two protocols
// (ext2ph vs. ParColl) can be compared under *identical* fault conditions.
//
// The plan is queried from hooks in fs::OstModel::serve (outages, drops,
// delays, degradation), the LustreSim RPC path (timeout/backoff/failover),
// the collective entry points (rank stalls), and the ParColl engine
// (aggregator re-election). An empty plan short-circuits at every hook:
// the fault-free path is bit-for-bit and timing-identical to a build
// without the fault layer.
//
// This header is deliberately free of MPI/fs dependencies so both layers
// can include it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace parcoll::fault {

/// OST `ost` serves nothing in [begin, end): RPCs arriving inside the
/// window receive no reply and the client's timeout machinery kicks in.
struct OstOutage {
  int ost = -1;
  double begin = 0.0;
  double end = 0.0;

  bool operator==(const OstOutage&) const = default;
};

/// OST `ost` runs degraded in [begin, end): service times are multiplied by
/// `factor` on top of the model's own heavy-tailed slowdowns.
struct OstDegrade {
  int ost = -1;
  double begin = 0.0;
  double end = 0.0;
  double factor = 1.0;

  bool operator==(const OstDegrade&) const = default;
};

/// Rank `rank` stalls (e.g. OS noise, a wedged core) for `duration`
/// seconds, applied at the rank's first synchronization point at or after
/// virtual time `at`.
struct RankStall {
  int rank = -1;
  double at = 0.0;
  double duration = 0.0;

  bool operator==(const RankStall&) const = default;
};

/// Latent media corruption: one stored byte on OST `ost` silently flips a
/// bit at virtual time `at`. The flipped site is a seeded hash over the
/// bytes the OST holds at that moment, so the event is deterministic for a
/// given store state. A no-op while the OST holds no data (or in phantom
/// store mode, which keeps no bytes to flip).
struct MediaCorrupt {
  int ost = -1;
  double at = 0.0;

  bool operator==(const MediaCorrupt&) const = default;
};

/// Client-side RPC recovery policy: a lost RPC is detected after `timeout`
/// seconds, retried with capped exponential backoff, and after
/// `max_retries` consecutive failures on one target the I/O fails over to
/// the next surviving OST.
struct RetryPolicy {
  double timeout = 0.05;
  double backoff_base = 0.01;
  double backoff_max = 0.2;
  int max_retries = 3;

  bool operator==(const RetryPolicy&) const = default;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<OstOutage> outages;
  std::vector<OstDegrade> degrades;
  std::vector<RankStall> stalls;
  std::vector<MediaCorrupt> media;
  /// Probability that any one RPC is dropped en route (drawn per attempt).
  double rpc_drop_prob = 0.0;
  /// Probability that an RPC is delayed by rpc_delay_seconds.
  double rpc_delay_prob = 0.0;
  double rpc_delay_seconds = 0.0;
  /// Probability that a write RPC's payload lands on the OST with a silent
  /// bit flip (drawn per stored piece, fresh randomness per retransmit).
  double rpc_corrupt_prob = 0.0;
  /// Probability that a resident bb staging segment decays in the arena
  /// between stage and drain (drawn per staged segment).
  double bb_corrupt_prob = 0.0;
  /// A subgroup re-elects an aggregator whose remaining scheduled stall
  /// exceeds this threshold at collective-entry time.
  double agg_stall_threshold = 0.05;
  RetryPolicy retry;

  /// True when the plan schedules nothing; empty plans are never installed,
  /// so every hook reduces to a null-pointer check.
  [[nodiscard]] bool empty() const;

  [[nodiscard]] bool ost_down(int ost, double at) const;
  [[nodiscard]] double degrade_factor(int ost, double at) const;
  /// Per-attempt drop/delay draws; `draw` is the OST's monotone fault-draw
  /// counter, so retries of a dropped RPC get fresh randomness.
  [[nodiscard]] bool drop_rpc(int ost, std::uint64_t draw) const;
  [[nodiscard]] bool delay_rpc(int ost, std::uint64_t draw) const;
  /// Per-piece write-payload corruption draw (same counter discipline as
  /// drop/delay: the caller supplies a monotone per-OST draw counter).
  [[nodiscard]] bool corrupt_rpc(int ost, std::uint64_t draw) const;
  /// Per-segment bb decay draw; `rank` keys the stream so draws are
  /// schedule-independent (each rank counts its own staged segments).
  [[nodiscard]] bool corrupt_bb(int rank, std::uint64_t draw) const;
  /// Seeded site-selection hash for picking which byte/bit a corruption
  /// event flips; deterministic in (seed, a, b).
  [[nodiscard]] std::uint64_t corrupt_site(std::uint64_t a,
                                           std::uint64_t b) const;
  /// Seconds of scheduled stall remaining for `rank` at time `at` (0 when
  /// none is in progress).
  [[nodiscard]] double stall_remaining(int rank, double at) const;
  [[nodiscard]] bool has_rank_stalls() const { return !stalls.empty(); }
  /// Capped exponential backoff before retry number `attempt` (0-based).
  [[nodiscard]] double backoff(int attempt) const;

  /// Parse a plan from a semicolon-separated spec, e.g.
  ///   "seed=7;ost-outage=3:0.1:0.5;rpc-drop=0.01;rank-stall=5:0.2:1.0;
  ///    ost-degrade=2:0:1:4.0;rpc-delay=0.05:0.01;timeout=0.02;
  ///    max-retries=2;backoff=0.005:0.1;agg-stall-threshold=0.05"
  /// Repeatable keys: ost-outage, ost-degrade, rank-stall. Throws
  /// std::invalid_argument on malformed input.
  static FaultPlan parse(const std::string& spec);

  /// Canonical one-line rendering (stable across identical plans);
  /// round-trips exactly: parse(describe()) == *this.
  [[nodiscard]] std::string describe() const;

  bool operator==(const FaultPlan&) const = default;
};

/// Degraded-mode event counters. Kept per client/rank so a rank can
/// snapshot-and-diff its own counters around an operation without seeing
/// other ranks' interleaved activity.
struct FaultCounters {
  std::uint64_t retries = 0;      // RPC attempts that timed out and were resent
  std::uint64_t failovers = 0;    // RPCs redirected to a surviving OST
  std::uint64_t drops = 0;        // RPCs lost to the random drop process
  std::uint64_t delays = 0;       // RPCs hit by the random delay process
  std::uint64_t reelections = 0;  // aggregators replaced by their subgroup
  std::uint64_t stalls = 0;       // rank stall events applied
  std::uint64_t corrupt_injected = 0;  // silent corruption events planted
  std::uint64_t corrupt_detected = 0;  // corruptions caught by a checksum
  std::uint64_t corrupt_repaired = 0;  // corruptions healed in place
  std::uint64_t scrub_repairs = 0;     // repairs made by the scrubber
  double faulted_seconds = 0.0;   // virtual time lost to timeouts/backoff

  FaultCounters& operator+=(const FaultCounters& other);
  [[nodiscard]] bool any() const {
    return retries || failovers || drops || delays || reelections || stalls ||
           corrupt_injected || corrupt_detected || corrupt_repaired ||
           scrub_repairs;
  }
};

/// Mutable per-run fault bookkeeping, owned by the World.
class FaultState {
 public:
  FaultCounters& of(int client);
  [[nodiscard]] FaultCounters of(int client) const;
  [[nodiscard]] FaultCounters total() const;

 private:
  std::vector<FaultCounters> by_client_;
};

}  // namespace parcoll::fault
