# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(calibration_check "/root/repo/build/bench/calibration_check")
set_tests_properties(calibration_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_tab05 "/root/repo/build/bench/tab05_aggregator_dist")
set_tests_properties(bench_tab05 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(tool_parcoll_sim "/root/repo/build/bench/parcoll_sim" "--workload" "tileio" "--nprocs" "16" "--impl" "parcoll" "--groups" "auto")
set_tests_properties(tool_parcoll_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(tool_parcoll_sweep "/root/repo/build/bench/parcoll_sweep" "--workload" "tileio" "--procs" "16" "--groups" "0,2")
set_tests_properties(tool_parcoll_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;48;add_test;/root/repo/bench/CMakeLists.txt;0;")
