#include "workloads/runner.hpp"

#include "fs/lustre.hpp"
#include "obs/run_export.hpp"

namespace parcoll::workloads {

const char* to_string(Impl impl) {
  switch (impl) {
    case Impl::PosixIndependent:
      return "posix-independent";
    case Impl::Sieving:
      return "sieving";
    case Impl::Independent:
      return "independent";
    case Impl::Ext2ph:
      return "ext2ph";
    case Impl::ParColl:
      return "parcoll";
  }
  return "?";
}

mpiio::Hints RunSpec::hints() const {
  mpiio::Hints hints;
  hints.cb_buffer_size = cb_buffer_size;
  hints.cb_nodes = cb_nodes;
  hints.cb_node_list = cb_node_list;
  if (impl == Impl::ParColl) {
    hints.parcoll_num_groups = parcoll_groups;
  }
  hints.parcoll_min_group_size = min_group_size;
  hints.parcoll_view_switch = view_switch;
  hints.parcoll_persistent_groups = persistent_groups;
  hints.cb_intranode = intranode;
  hints.cb_intranode_leader = intranode_leader;
  hints.bb = bb;
  hints.integrity = integrity;
  return hints;
}

machine::MachineModel RunSpec::model(int nranks) const {
  machine::MachineModel model =
      machine::MachineModel::jaguar(nranks, mapping, cores_per_node);
  if (tweak_model) {
    tweak_model(model);
  }
  return model;
}

void apply_observability(mpi::World& world, const RunSpec& spec) {
  if (spec.stack_bytes != 0) {
    // Before any rank fiber is spawned, so every stack gets the size (and
    // an invalid knob fails fast instead of mid-run).
    world.engine().set_default_stack_bytes(spec.stack_bytes);
  }
  if (spec.trace) {
    world.enable_tracing();
  }
  if (spec.metrics) {
    world.enable_metrics();
  }
  if (spec.sample_interval > 0) {
    world.enable_sampler(spec.sample_interval);
  }
  if (!spec.job.empty()) {
    world.set_job_all(spec.job);
  }
  if (spec.schedule.kind != sim::TieBreak::Program) {
    world.engine().set_schedule(spec.schedule);
  }
  if (spec.checker != nullptr) {
    world.set_checker(spec.checker);
  }
}

RunResult collect(const mpi::World& world, const PhaseClock& clock,
                  std::uint64_t bytes, const mpiio::FileStats& stats) {
  RunResult result;
  result.elapsed = clock.elapsed();
  result.total_elapsed = world.elapsed();
  result.bytes = bytes;
  for (const mpi::TimeBreakdown& breakdown : world.rank_times()) {
    result.sum += breakdown;
  }
  result.stats = stats;
  auto& mutable_world = const_cast<mpi::World&>(world);
  auto& fs = mutable_world.fs();
  result.fs_rpcs = fs.total_rpcs();
  result.fs_lock_switches = fs.total_lock_switches();
  result.schedule_token = mutable_world.engine().schedule_token();
  result.choice_points = mutable_world.engine().choice_log().size();
  result.file_digest = fs.store().content_digest();
  result.engine = mutable_world.engine().stats();
  if (mutable_world.tracer() != nullptr) {
    result.trace = std::make_shared<mpi::Tracer>(*mutable_world.tracer());
  }
  result.faults = mutable_world.fault_state().total();
  if (mutable_world.metrics() != nullptr) {
    obs::export_file_stats(*mutable_world.metrics(), result.stats);
    obs::export_fault_counters(*mutable_world.metrics(), result.faults);
    result.metrics =
        std::make_shared<obs::MetricsRegistry>(*mutable_world.metrics());
  }
  if (mutable_world.sampler() != nullptr) {
    result.timeline = mutable_world.sampler()->snapshot();
  }
  result.jobs = world.client_jobs();
  return result;
}

obs::JsonValue run_result_json(const RunResult& result) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("elapsed_s", result.elapsed);
  doc.set("total_elapsed_s", result.total_elapsed);
  doc.set("bytes", result.bytes);
  doc.set("bandwidth_mib_s", result.bandwidth_mib());
  doc.set("sync_fraction", result.sync_fraction());
  doc.set("verified", result.verified);
  doc.set("fs_rpcs", result.fs_rpcs);
  doc.set("fs_lock_switches", result.fs_lock_switches);
  doc.set("schedule", result.schedule_token);
  doc.set("choice_points", result.choice_points);
  doc.set("file_digest", result.file_digest);
  obs::JsonValue engine = obs::JsonValue::object();
  engine.set("events_executed", result.engine.events_executed);
  engine.set("callback_events", result.engine.callback_events);
  engine.set("events_per_s", result.engine.events_per_second());
  engine.set("run_wall_s", result.engine.run_wall_seconds);
  engine.set("fibers_spawned", result.engine.fibers_spawned);
  engine.set("peak_live_fibers", result.engine.peak_live_fibers);
  engine.set("stacks_allocated", result.engine.stacks_allocated);
  engine.set("stacks_reused", result.engine.stacks_reused);
  engine.set("default_stack_bytes", result.engine.default_stack_bytes);
  engine.set("peak_queue_depth", result.engine.peak_queue_depth);
  engine.set("queue_overflow_pushes", result.engine.queue_overflow_pushes);
  engine.set("queue_retunes", result.engine.queue_retunes);
  engine.set("peak_rss_bytes", sim::peak_rss_bytes());
  doc.set("engine", engine);
  doc.set("time", obs::time_breakdown_json(result.sum));
  doc.set("stats", obs::file_stats_json(result.stats));
  doc.set("faults", obs::fault_counters_json(result.faults));
  if (result.metrics) {
    doc.set("metrics", obs::metrics_json(*result.metrics));
  }
  return doc;
}

}  // namespace parcoll::workloads
