#include "sim/event_queue.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace parcoll::sim {

namespace {

/// Heap comparator: `true` when `a` runs later than `b`, so std heap
/// algorithms (max-heap by default) keep the earliest event on top.
inline bool later(const QueuedEvent& a, const QueuedEvent& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.seq > b.seq;
}

}  // namespace

CalendarQueue::CalendarQueue()
    : buckets_(kMinBuckets), live_((kMinBuckets + 63) / 64, 0) {}

void CalendarQueue::push(const QueuedEvent& event) {
  if (count_ == 0) {
    // Empty queue: re-anchor the window so the event lands in bucket 0 and
    // the serving position restarts cleanly.
    w0_ = event.time;
    cur_ = 0;
    cur_heaped_ = false;
  }
  ++count_;
  if (count_ > counters_.peak_depth) counters_.peak_depth = count_;
  if (count_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
    retune(buckets_.size() * 2, w0_ + static_cast<double>(cur_) * width_);
  }
  place(event);
}

void CalendarQueue::place(const QueuedEvent& event) {
  // Compare in double space before casting: a tiny width_ against a
  // far-future time would overflow the integer conversion. The reciprocal
  // multiply can round to a neighboring index relative to a true divide,
  // but the mapping stays monotone in time, which is all bucket assignment
  // needs for the pop order to stay exact.
  const double rel = (event.time - w0_) * inv_width_;
  if (!(rel < static_cast<double>(buckets_.size()))) {
    overflow_push(event);
    return;
  }
  std::size_t idx = rel <= 0.0 ? 0 : static_cast<std::size_t>(rel);
  if (idx < cur_) {
    // An event at (or just after) `now` whose slot the serving position
    // already passed. The serving bucket's heap orders by (time, seq), not
    // by bucket bounds, so parking it there keeps the order exact.
    idx = cur_;
  }
  std::vector<QueuedEvent>& bucket = buckets_[idx];
  bucket.push_back(event);
  if (bucket.size() == 1) mark_live(idx);
  if (idx == cur_ && cur_heaped_) {
    std::push_heap(bucket.begin(), bucket.end(), later);
  }
}

std::size_t CalendarQueue::next_live(std::size_t from) const {
  std::size_t word = from >> 6;
  if (word >= live_.size()) return buckets_.size();
  std::uint64_t bits = live_[word] & (~0ull << (from & 63));
  while (bits == 0) {
    if (++word == live_.size()) return buckets_.size();
    bits = live_[word];
  }
  return (word << 6) + static_cast<std::size_t>(__builtin_ctzll(bits));
}

void CalendarQueue::overflow_push(const QueuedEvent& event) {
  ++counters_.overflow_pushes;
  overflow_.push_back(event);
  std::push_heap(overflow_.begin(), overflow_.end(), later);
}

QueuedEvent CalendarQueue::overflow_pop() {
  std::pop_heap(overflow_.begin(), overflow_.end(), later);
  QueuedEvent event = overflow_.back();
  overflow_.pop_back();
  return event;
}

void CalendarQueue::settle() {
  if (count_ < buckets_.size() / 8 && buckets_.size() > kMinBuckets) {
    retune(buckets_.size() / 2, w0_ + static_cast<double>(cur_) * width_);
  }
  for (;;) {
    const std::size_t next = next_live(cur_);
    if (next < buckets_.size()) {
      if (next != cur_) {
        cur_ = next;
        cur_heaped_ = false;
      }
      if (!cur_heaped_) {
        std::vector<QueuedEvent>& bucket = buckets_[cur_];
        std::make_heap(bucket.begin(), bucket.end(), later);
        cur_heaped_ = true;
      }
      return;
    }
    cur_ = buckets_.size();
    // The window is drained; slide it to the earliest overflow event and
    // pull everything that now falls inside. The pull predicate is the very
    // bucket computation place() runs, so a pulled event can never bounce
    // straight back into overflow (a boundary ulp between `w0_ + n*width_`
    // and the per-event index could otherwise loop this forever).
    w0_ = overflow_.front().time;
    cur_ = 0;
    cur_heaped_ = false;
    const double nbuckets = static_cast<double>(buckets_.size());
    while (!overflow_.empty() &&
           (overflow_.front().time - w0_) * inv_width_ < nbuckets) {
      place(overflow_pop());
    }
  }
}

QueuedEvent CalendarQueue::peek() {
  settle();
  return buckets_[cur_].front();
}

int CalendarQueue::second_pid_hint() const {
  // The second-minimal event of a settled binary heap is the lesser of the
  // root's two children. Events beyond the serving bucket would need a scan;
  // for a prefetch hint, "unknown" is fine.
  if (cur_ >= buckets_.size() || !cur_heaped_) return -1;
  const std::vector<QueuedEvent>& bucket = buckets_[cur_];
  if (bucket.size() < 2) return -1;
  if (bucket.size() == 2) return bucket[1].pid;
  return later(bucket[1], bucket[2]) ? bucket[2].pid : bucket[1].pid;
}

double CalendarQueue::min_time() {
  settle();
  return buckets_[cur_].front().time;
}

QueuedEvent CalendarQueue::pop() {
  settle();
  std::vector<QueuedEvent>& bucket = buckets_[cur_];
  std::pop_heap(bucket.begin(), bucket.end(), later);
  const QueuedEvent event = bucket.back();
  bucket.pop_back();
  if (bucket.empty()) mark_dead(cur_);
  --count_;
  if (event.time > last_pop_time_) {
    const double gap = event.time - last_pop_time_;
    avg_gap_ = avg_gap_ == 0.0 ? gap : 0.875 * avg_gap_ + 0.125 * gap;
  }
  last_pop_time_ = event.time;
  return event;
}

void CalendarQueue::retune(std::size_t nbuckets, double anchor) {
  ++counters_.retunes;
  std::vector<QueuedEvent> all;
  all.reserve(count_);
  for (std::vector<QueuedEvent>& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  all.insert(all.end(), overflow_.begin(), overflow_.end());
  overflow_.clear();
  buckets_.resize(nbuckets);
  live_.assign((nbuckets + 63) / 64, 0);
  if (avg_gap_ > 0.0) {
    width_ = std::max(kMinWidth, 4.0 * avg_gap_);
    inv_width_ = 1.0 / width_;
  }
  // Anchor at the serving position, pulled back to the earliest event so
  // nothing lands behind the window.
  w0_ = anchor;
  for (const QueuedEvent& event : all) {
    if (event.time < w0_) w0_ = event.time;
  }
  cur_ = 0;
  cur_heaped_ = false;
  for (const QueuedEvent& event : all) {
    place(event);
  }
}

std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof line, status) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%llu",
                  reinterpret_cast<unsigned long long*>(&kib));
      break;
    }
  }
  std::fclose(status);
  return kib * 1024;
#else
  return 0;
#endif
}

}  // namespace parcoll::sim
