file(REMOVE_RECURSE
  "CMakeFiles/tile_visualization.dir/tile_visualization.cpp.o"
  "CMakeFiles/tile_visualization.dir/tile_visualization.cpp.o.d"
  "tile_visualization"
  "tile_visualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tile_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
