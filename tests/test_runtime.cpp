// World/Rank runtime: lifecycle, accounting, shared objects, determinism.
#include <gtest/gtest.h>

#include <sstream>

#include "fs/lustre.hpp"
#include "mpiio/stats.hpp"
#include "mpi/collectives.hpp"
#include "mpi/runtime.hpp"
#include "mpi/trace.hpp"

namespace parcoll::mpi {
namespace {

TEST(World, RunsEveryRankOnce) {
  World world(machine::MachineModel::jaguar(16));
  std::vector<int> visits(16, 0);
  world.run([&](Rank& self) { ++visits[self.rank()]; });
  for (int count : visits) EXPECT_EQ(count, 1);
}

TEST(World, SecondRunThrows) {
  World world(machine::MachineModel::jaguar(2));
  world.run([](Rank&) {});
  EXPECT_THROW(world.run([](Rank&) {}), std::logic_error);
}

TEST(World, ElapsedIsTheLastFinisher) {
  World world(machine::MachineModel::jaguar(4));
  world.run([&](Rank& self) {
    self.busy(TimeCat::Compute, 0.25 * (self.rank() + 1));
  });
  EXPECT_DOUBLE_EQ(world.elapsed(), 1.0);
}

TEST(World, RankTimesArePerRank) {
  World world(machine::MachineModel::jaguar(3));
  world.run([&](Rank& self) {
    self.busy(TimeCat::IO, 0.1 * self.rank());
  });
  EXPECT_DOUBLE_EQ(world.rank_times()[0][TimeCat::IO], 0.0);
  EXPECT_DOUBLE_EQ(world.rank_times()[2][TimeCat::IO], 0.2);
}

TEST(World, SharedObjectIsCreatedOnceAndShared) {
  World world(machine::MachineModel::jaguar(4));
  int factory_calls = 0;
  std::vector<void*> seen(4, nullptr);
  world.run([&](Rank& self) {
    auto obj = self.world().shared_object<int>("thing", [&]() {
      ++factory_calls;
      return std::make_shared<int>(7);
    });
    seen[self.rank()] = obj.get();
    auto other = self.world().shared_object<int>("other", [&]() {
      ++factory_calls;
      return std::make_shared<int>(8);
    });
    EXPECT_NE(obj.get(), other.get());
  });
  EXPECT_EQ(factory_calls, 2);
  for (int r = 1; r < 4; ++r) EXPECT_EQ(seen[r], seen[0]);
}

TEST(World, ByteTrueFlagSelectsStoreMode) {
  World real(machine::MachineModel::jaguar(1), true);
  World phantom(machine::MachineModel::jaguar(1), false);
  EXPECT_TRUE(real.byte_true());
  EXPECT_FALSE(phantom.byte_true());
  EXPECT_NE(dynamic_cast<fs::MemoryStore*>(&real.fs().store()), nullptr);
  EXPECT_NE(dynamic_cast<fs::PhantomStore*>(&phantom.fs().store()), nullptr);
}

TEST(Rank, NodePlacementFollowsTheTopology) {
  World world(machine::MachineModel::jaguar(8, machine::Mapping::Cyclic));
  world.run([&](Rank& self) {
    EXPECT_EQ(self.node(), self.rank() % 4);
    EXPECT_EQ(self.size(), 8);
  });
}

TEST(Rank, TouchBytesChargesMemcpyBandwidth) {
  World world(machine::MachineModel::jaguar(1));
  const double bw = machine::MemoryParams{}.memcpy_bandwidth;
  world.run([&](Rank& self) {
    self.touch_bytes(bw);  // exactly one second of copying
    EXPECT_DOUBLE_EQ(self.times().breakdown()[TimeCat::Compute], 1.0);
    EXPECT_DOUBLE_EQ(self.now(), 1.0);
  });
}

TEST(Rank, CollectiveSequencePerContext) {
  World world(machine::MachineModel::jaguar(1));
  world.run([&](Rank& self) {
    EXPECT_EQ(self.next_coll_seq(10), 0u);
    EXPECT_EQ(self.next_coll_seq(10), 1u);
    EXPECT_EQ(self.next_coll_seq(11), 0u);  // independent per context
  });
}

TEST(World, FullStackRunIsDeterministic) {
  const auto run_once = [] {
    World world(machine::MachineModel::jaguar(16));
    auto& tracer = world.enable_tracing();
    world.run([&](Rank& self) {
      const int fs_id = self.world().fs().open("det.dat");
      for (int round = 0; round < 3; ++round) {
        allreduce_sum(self, self.comm_world(), self.rank());
        const fs::Extent extent{
            static_cast<std::uint64_t>(self.rank()) * 4096, 4096};
        self.world().fs().write(self.rank(), fs_id, std::span(&extent, 1),
                                nullptr);
      }
    });
    std::ostringstream os;
    tracer.write_csv(os);
    return std::make_pair(world.elapsed(), os.str());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);  // identical traces, byte for byte
}

TEST(Comm, MembershipQueries) {
  const Comm comm(5, {10, 20, 30});
  EXPECT_EQ(comm.size(), 3);
  EXPECT_EQ(comm.world_rank(1), 20);
  EXPECT_EQ(comm.local_rank(30), 2);
  EXPECT_EQ(comm.local_rank(99), -1);
  EXPECT_THROW(static_cast<void>(comm.world_rank(3)), std::out_of_range);
  EXPECT_THROW(Comm(6, {1, 1}), std::invalid_argument);
}

TEST(Stats, AccumulateAllFields) {
  mpiio::FileStats a;
  a.time.seconds[0] = 1;
  a.bytes_written = 10;
  a.collective_writes = 1;
  a.exchange_cycles = 5;
  a.view_switches = 1;
  a.last_num_groups = 4;
  mpiio::FileStats b;
  b.bytes_read = 20;
  b.independent_reads = 2;
  b.rmw_reads = 3;
  b.parcoll_calls = 1;
  b.last_num_groups = 0;  // zero must not clobber the previous value
  a += b;
  EXPECT_EQ(a.bytes_written, 10u);
  EXPECT_EQ(a.bytes_read, 20u);
  EXPECT_EQ(a.independent_reads, 2u);
  EXPECT_EQ(a.rmw_reads, 3u);
  EXPECT_EQ(a.parcoll_calls, 1u);
  EXPECT_EQ(a.view_switches, 1u);
  EXPECT_EQ(a.last_num_groups, 4);
  mpiio::FileStats c;
  c.last_num_groups = 8;
  a += c;
  EXPECT_EQ(a.last_num_groups, 8);  // newer nonzero value wins
}

}  // namespace
}  // namespace parcoll::mpi
