// Byte storage behind the simulated file system.
//
// MemoryStore keeps real file contents so tests can verify, byte for byte,
// that collective I/O protocols put the right data in the right place.
// PhantomStore keeps only bookkeeping (sizes, request counts) so benches can
// run paper-scale workloads (hundreds of GB of simulated I/O) through the
// identical code path without allocating the payload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace parcoll::fs {

enum class StoreMode { Memory, Phantom };

class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Write `length` bytes at `offset`; `data` may be nullptr (phantom write:
  /// bookkeeping only). Files grow as needed; gaps read back as zeros.
  virtual void write(int file_id, std::uint64_t offset, const std::byte* data,
                     std::uint64_t length) = 0;

  /// Read `length` bytes at `offset` into `out` (may be nullptr).
  virtual void read(int file_id, std::uint64_t offset, std::byte* out,
                    std::uint64_t length) = 0;

  /// High-water mark: one past the highest byte ever written.
  [[nodiscard]] virtual std::uint64_t size(int file_id) const = 0;

  /// Digest of every file's id, size, and contents (canonical id order);
  /// the model checker compares it across schedules and fault plans to
  /// assert byte-identical outcomes. Phantom stores hold no bytes: 0.
  [[nodiscard]] virtual std::uint64_t content_digest() const { return 0; }
};

class MemoryStore final : public ObjectStore {
 public:
  void write(int file_id, std::uint64_t offset, const std::byte* data,
             std::uint64_t length) override;
  void read(int file_id, std::uint64_t offset, std::byte* out,
            std::uint64_t length) override;
  [[nodiscard]] std::uint64_t size(int file_id) const override;
  [[nodiscard]] std::uint64_t content_digest() const override;

  /// Direct access for test assertions.
  [[nodiscard]] const std::vector<std::byte>& contents(int file_id) const;

 private:
  std::unordered_map<int, std::vector<std::byte>> files_;
};

class PhantomStore final : public ObjectStore {
 public:
  void write(int file_id, std::uint64_t offset, const std::byte* data,
             std::uint64_t length) override;
  void read(int file_id, std::uint64_t offset, std::byte* out,
            std::uint64_t length) override;
  [[nodiscard]] std::uint64_t size(int file_id) const override;

  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_; }
  [[nodiscard]] std::uint64_t write_ops() const { return write_ops_; }
  [[nodiscard]] std::uint64_t read_ops() const { return read_ops_; }

 private:
  std::unordered_map<int, std::uint64_t> high_water_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t write_ops_ = 0;
  std::uint64_t read_ops_ = 0;
};

}  // namespace parcoll::fs
